#include "obs/report.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <stdexcept>

#include "obs/bench_schema.hpp"

namespace lmc::obs {

std::vector<TraceEvent> load_trace_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) throw std::runtime_error("cannot open " + path);
  std::string text;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
  std::fclose(f);

  std::vector<TraceEvent> events;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) continue;
    TraceEvent ev;
    if (parse_jsonl_line(line, ev)) events.push_back(ev);
  }
  return events;
}

ReportSummary summarize(const std::vector<TraceEvent>& events) {
  ReportSummary s;
  s.events = events.size();
  for (const TraceEvent& ev : events) {
    if (ev.round > s.rounds) s.rounds = ev.round;
    switch (ev.type) {
      case EventType::kRunBegin:
        if (s.run_begins == 0) s.base_transitions = ev.b;
        ++s.run_begins;
        break;
      case EventType::kRunEnd:
        ++s.run_ends;
        s.final_transitions = ev.a;
        s.confirmed = ev.b;
        s.completed = ev.c != 0;
        s.elapsed_s = ev.dur;
        break;
      case EventType::kRoundBegin:
      case EventType::kRoundEnd:
        break;
      case EventType::kHandlerRun: {
        if (ev.c != 0)
          ++s.exec_cached;
        else
          ++s.exec_uncached;
        s.handler_exec_s += ev.dur;
        auto& rule = s.rules[{ev.node, ev.a}];
        ++rule.runs;
        if (ev.c != 0) ++rule.cached;
        rule.exec_s += ev.dur;
        break;
      }
      case EventType::kHandlerApply:
        // a=1 marks a cached replay — those count as ExecCache hits in the
        // checker (warm_pairs_skipped), never as transitions.
        if (ev.a == 0) ++s.transitions;
        break;
      case EventType::kStateInsert:
        ++s.state_inserts;
        break;
      case EventType::kIplusAppend:
        ++s.iplus_appends;
        break;
      case EventType::kComboSweep:
        s.combinations += ev.b;
        s.prelim_violations += ev.c;
        s.sweep_s += ev.dur;
        break;
      case EventType::kSoundnessRun:
        break;
      case EventType::kSoundnessVerdict:
        ++s.soundness_jobs;
        if (ev.a < 5) ++s.verdicts[ev.a];
        s.schedules += ev.b;
        s.soundness_agg_s += ev.dur;
        break;
      case EventType::kSoundnessPhase:
        s.soundness_wall_s += ev.dur;
        break;
      case EventType::kDeferralDrain:
        s.deferred_s += ev.dur;
        break;
      case EventType::kCheckpointSave:
        if (ev.a != 0) ++s.checkpoints;
        s.checkpoint_s += ev.dur;
        break;
      case EventType::kWorkerError:
        ++s.worker_errors;
        s.worker_exceptions_dropped += ev.a;
        break;
      case EventType::kPorPrune:
        ++s.por_prune_rounds;
        s.por_pruned = ev.b;
        s.por_conservative = ev.c;
        break;
      case EventType::kPorResolve:
        s.por_active = true;
        s.por_relation_pairs = ev.a;
        s.por_unclassifiable = ev.c;
        break;
      case EventType::kWarmMerge:
      case EventType::kOnlinePeriod:
        break;
    }
    auto& lane = s.lanes[ev.lane];
    ++lane.events;
    lane.busy_s += ev.dur;
  }
  s.deferrals = s.verdicts[kVerdictDefer];
  return s;
}

namespace {

void phase_row(std::FILE* out, const char* name, double secs, double elapsed,
               const char* note) {
  const double pct = elapsed > 0.0 ? 100.0 * secs / elapsed : 0.0;
  std::fprintf(out, "  %-22s %10.4fs %6.1f%%  %s\n", name, secs, pct, note);
}

}  // namespace

void print_report(const ReportSummary& s, std::FILE* out) {
  std::fprintf(out, "lmc_report: %" PRIu64 " event(s), %u round(s), %" PRIu64
               " run segment(s)%s\n",
               s.events, s.rounds, s.run_begins, s.completed ? ", completed" : "");
  std::fprintf(out, "totals: %" PRIu64 " transitions, %" PRIu64 " state inserts, %" PRIu64
               " I+ appends, %" PRIu64 " combinations, %" PRIu64 " prelim -> %" PRIu64
               " confirmed violation(s)\n",
               s.transitions, s.state_inserts, s.iplus_appends, s.combinations,
               s.prelim_violations, s.confirmed);
  const std::uint64_t lookups = s.exec_cached + s.exec_uncached;
  if (lookups > 0)
    std::fprintf(out, "ExecCache: %" PRIu64 "/%" PRIu64 " hit (%.1f%%)\n", s.exec_cached,
                 lookups, 100.0 * static_cast<double>(s.exec_cached) / static_cast<double>(lookups));
  std::fprintf(out, "soundness: %" PRIu64 " job(s): %" PRIu64 " sound, %" PRIu64
               " unsound, %" PRIu64 " deferred, %" PRIu64 " feas-skip, %" PRIu64
               " skipped; %" PRIu64 " schedule(s)\n",
               s.soundness_jobs, s.verdicts[kVerdictSound], s.verdicts[kVerdictUnsound],
               s.verdicts[kVerdictDefer], s.verdicts[kVerdictFeasSkip],
               s.verdicts[kVerdictSkipped], s.schedules);
  if (s.worker_errors > 0)
    std::fprintf(out, "worker errors: %" PRIu64 " event(s), %" PRIu64
                 " secondary exception(s) dropped (first of each fan-out rethrown)\n",
                 s.worker_errors, s.worker_exceptions_dropped);
  if (s.por_active)
    std::fprintf(out, "POR: %" PRIu64 " independent pair(s) (%" PRIu64
                 " unclassifiable); %" PRIu64 " delivery(ies) pruned over %" PRIu64
                 " round(s), %" PRIu64 " conservative skip(s)\n",
                 s.por_relation_pairs, s.por_unclassifiable, s.por_pruned,
                 s.por_prune_rounds, s.por_conservative);

  std::fprintf(out, "where did time go (elapsed %.4fs):\n", s.elapsed_s);
  phase_row(out, "handler execution", s.handler_exec_s, s.elapsed_s,
            "aggregate across workers");
  phase_row(out, "combination sweep", s.sweep_s, s.elapsed_s, "wall (deterministic thread)");
  phase_row(out, "soundness (wall)", s.soundness_wall_s, s.elapsed_s, "wall");
  phase_row(out, "soundness (aggregate)", s.soundness_agg_s, s.elapsed_s,
            "sum over jobs; exceeds wall when parallel");
  phase_row(out, "deferred drain", s.deferred_s, s.elapsed_s, "wall");
  phase_row(out, "checkpointing", s.checkpoint_s, s.elapsed_s, "wall");

  if (!s.rules.empty()) {
    std::fprintf(out, "per-rule (node, kind):\n");
    for (const auto& [key, line] : s.rules)
      std::fprintf(out, "  node %3u %-8s %8" PRIu64 " run(s) %8" PRIu64
                   " cached %10.4fs\n",
                   key.first, key.second != 0 ? "message" : "timeout", line.runs, line.cached,
                   line.exec_s);
  }
  if (!s.lanes.empty()) {
    std::fprintf(out, "per-worker lane (0 = deterministic thread):\n");
    for (const auto& [lane, line] : s.lanes)
      std::fprintf(out, "  lane %3u %10" PRIu64 " event(s) %10.4fs busy\n", lane, line.events,
                   line.busy_s);
  }
}

std::string report_bench_json(const ReportSummary& s, const std::string& case_label) {
  BenchRecord rec("lmc_report", case_label);
  rec.param("run_segments", s.run_begins);
  rec.metric("events", s.events);
  rec.metric("rounds", static_cast<std::uint64_t>(s.rounds));
  rec.metric("transitions", s.transitions);
  rec.metric("state_inserts", s.state_inserts);
  rec.metric("iplus_appends", s.iplus_appends);
  rec.metric("combinations", s.combinations);
  rec.metric("prelim_violations", s.prelim_violations);
  rec.metric("confirmed_violations", s.confirmed);
  rec.metric("soundness_jobs", s.soundness_jobs);
  rec.metric("soundness_deferred", s.deferrals);
  rec.metric("exec_cache_hits", s.exec_cached);
  rec.metric("exec_cache_misses", s.exec_uncached);
  rec.metric("worker_errors", s.worker_errors);
  rec.metric("worker_exceptions_dropped", s.worker_exceptions_dropped);
  if (s.por_active) {
    rec.metric("por_relation_pairs", s.por_relation_pairs);
    rec.metric("por_unclassifiable", s.por_unclassifiable);
    rec.metric("por_pruned", s.por_pruned);
    rec.metric("por_conservative", s.por_conservative);
    rec.metric("por_prune_rounds", s.por_prune_rounds);
  }
  rec.metric("elapsed_s", s.elapsed_s);
  rec.metric("handler_exec_s", s.handler_exec_s);
  rec.metric("sweep_s", s.sweep_s);
  rec.metric("soundness_wall_s", s.soundness_wall_s);
  rec.metric("soundness_agg_s", s.soundness_agg_s);
  rec.metric("deferred_s", s.deferred_s);
  rec.metric("checkpoint_s", s.checkpoint_s);
  return rec.to_json();
}

void print_profile_report(const ProfileData& prof, std::size_t top_k, std::FILE* out) {
  const double sweep = prof.phase_s[static_cast<std::size_t>(Phase::kSweep)];
  const double soundness = prof.phase_s[static_cast<std::size_t>(Phase::kSoundness)];
  const double drain = prof.phase_s[static_cast<std::size_t>(Phase::kDrain)];
  // Explore wall is derived, not measured: what remains of the run after the
  // deterministic sweep windows and the phase-2 drain (the metrics heartbeat
  // uses the same formula). Phase-1 soundness walls sit inside the sweep
  // windows, mirroring LocalMcStats.
  const double explore = std::max(0.0, prof.run_wall_s - sweep - drain);
  std::fprintf(out, "lmc_report --profile: %zu prof line(s), %u thread(s), run wall %.4fs\n",
               prof.lines, prof.threads, prof.run_wall_s);
  std::fprintf(out, "phase wall:\n");
  phase_row(out, "explore", explore, prof.run_wall_s, "derived: run - sweep - drain");
  phase_row(out, "combination sweep", sweep, prof.run_wall_s, "includes phase-1 soundness");
  phase_row(out, "soundness", soundness, prof.run_wall_s, "wall (both phases)");
  phase_row(out, "deferred drain", drain, prof.run_wall_s, "wall");

  std::fprintf(out, "counters:\n");
  for (std::size_t i = 0; i < static_cast<std::size_t>(Counter::kCount); ++i)
    std::fprintf(out, "  %-22s %14" PRIu64 "\n", to_string(static_cast<Counter>(i)),
                 prof.counters[i]);

  std::uint64_t hits = 0, misses = 0;
  for (std::size_t i = 0; i < kProfShards; ++i) {
    hits += prof.shard_hits[i];
    misses += prof.shard_misses[i];
  }
  if (hits + misses > 0) {
    std::fprintf(out, "ExecCache shards (%" PRIu64 " lookup(s), %.1f%% hit):\n", hits + misses,
                 100.0 * static_cast<double>(hits) / static_cast<double>(hits + misses));
    for (std::size_t i = 0; i < kProfShards; ++i) {
      const std::uint64_t n = prof.shard_hits[i] + prof.shard_misses[i];
      if (n == 0) continue;
      std::fprintf(out, "  shard %2zu %10" PRIu64 " hit %10" PRIu64 " miss  (%.1f%%)\n", i,
                   prof.shard_hits[i], prof.shard_misses[i],
                   100.0 * static_cast<double>(prof.shard_hits[i]) / static_cast<double>(n));
    }
  }

  std::vector<const ProfileData::Rule*> hot;
  hot.reserve(prof.rules.size());
  for (const auto& [key, rule] : prof.rules) hot.push_back(&rule);
  std::sort(hot.begin(), hot.end(), [](const ProfileData::Rule* a, const ProfileData::Rule* b) {
    if (a->exec_s != b->exec_s) return a->exec_s > b->exec_s;
    return a->key < b->key;  // deterministic tie-break
  });
  if (top_k > 0 && hot.size() > top_k) hot.resize(top_k);
  if (!hot.empty()) {
    std::fprintf(out,
                 "hottest rules (top %zu of %zu by handler wall; %% of explore wall):\n",
                 hot.size(), prof.rules.size());
    std::fprintf(out, "  %-26s %9s %9s %12s %7s %9s %9s\n", "rule", "runs", "cached", "exec_s",
                 "%expl", "ser B/tr", "hash B/tr");
    for (const ProfileData::Rule* r : hot) {
      char label[64];
      std::snprintf(label, sizeof label, "node %u %s kind %u", r->key.node,
                    r->key.is_message != 0 ? "msg" : "int", r->key.kind);
      const std::uint64_t applied = r->runs + r->cached;
      const double pct = explore > 0.0 ? 100.0 * r->exec_s / explore : 0.0;
      const double ser_per =
          applied > 0 ? static_cast<double>(r->ser_bytes) / static_cast<double>(applied) : 0.0;
      const double hash_per =
          applied > 0 ? static_cast<double>(r->hash_bytes) / static_cast<double>(applied) : 0.0;
      std::fprintf(out, "  %-26s %9" PRIu64 " %9" PRIu64 " %12.6f %6.1f%% %9.1f %9.1f\n", label,
                   r->runs, r->cached, r->exec_s, pct, ser_per, hash_per);
    }
  }
}

void print_metrics_reductions(const std::vector<MetricsRecord>& records, std::FILE* out) {
  if (records.empty()) return;
  const MetricsSnapshot& s = records.back().snap;  // cumulative gauges: last wins
  if (s.sym_orbits > 0) {
    const std::uint64_t seen = s.sym_orbits + s.sym_orbit_hits;
    std::fprintf(out,
                 "symmetry: %" PRIu64 " orbit(s) (%" PRIu64 " seen-set hit(s)) standing for %"
                 PRIu64 " ordered combination(s)%s\n",
                 s.sym_orbits, s.sym_orbit_hits, s.sym_represented,
                 seen > 0 && s.sym_represented > seen ? " — reduction active" : "");
  }
  if (s.por_pruned > 0 || s.por_deferred > 0)
    std::fprintf(out, "POR (heartbeat): %" PRIu64 " delivery(ies) pruned, %" PRIu64
                 " pair(s) deferred one generation\n",
                 s.por_pruned, s.por_deferred);
}

}  // namespace lmc::obs
