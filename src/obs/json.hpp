// Minimal JSON support for the observability layer: a writer for flat
// records and a small recursive-descent parser for ingesting them back
// (lmc_report, schema validation). Deliberately tiny — no external
// dependency, no DOM features beyond what the obs tools need:
//  * values: null, bool, number (stored as double AND as the raw token so
//    64-bit counters survive the round trip), string, array, object;
//  * objects preserve insertion order (validation reports stable paths);
//  * strings support the \" \\ \/ \b \f \n \r \t and \uXXXX escapes
//    (\u is decoded to UTF-8).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace lmc::obs {

struct JsonValue {
  enum class Kind : std::uint8_t { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string raw;     ///< numbers: the exact source token (u64-safe)
  std::string str;
  std::vector<JsonValue> items;                          ///< arrays
  std::vector<std::pair<std::string, JsonValue>> fields; ///< objects, in order

  bool is_object() const { return kind == Kind::kObject; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_bool() const { return kind == Kind::kBool; }

  /// Object field lookup; nullptr when absent (or not an object).
  const JsonValue* get(const std::string& key) const;

  /// Numbers round-tripped through the raw token; 0 fallbacks otherwise.
  std::uint64_t as_u64() const;
  double as_double() const;
};

/// Parse one JSON document. Returns false (and sets *err, if given) on any
/// syntax error or trailing garbage.
bool json_parse(const std::string& text, JsonValue& out, std::string* err = nullptr);

/// Escape a string for embedding in a JSON document (adds the quotes).
std::string json_quote(const std::string& s);

/// Format a double so it round-trips exactly (%.17g, with inf/nan mapped to
/// null — JSON has no non-finite numbers).
std::string json_double(double v);

}  // namespace lmc::obs
