#include "obs/prof.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <tuple>

#include "obs/json.hpp"

namespace lmc::obs {

namespace {

std::uint64_t next_sink_uid() {
  // Shares nothing with the trace sink's counter: each class keys its own
  // thread-local lane cache.
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

constexpr std::size_t kCounterCount = static_cast<std::size_t>(Counter::kCount);
constexpr std::size_t kPhaseCount = 7;

const char* phase_name(std::size_t p) {
  return to_string(static_cast<Phase>(p));
}

}  // namespace

const char* to_string(Counter c) {
  switch (c) {
    case Counter::kBytesHashed: return "bytes_hashed";
    case Counter::kBytesSerialized: return "bytes_serialized";
    case Counter::kStatesCanonicalized: return "states_canonicalized";
    case Counter::kOrbitCollapses: return "orbit_collapses";
    case Counter::kPorPrunes: return "por_prunes";
    case Counter::kPorDeferrals: return "por_deferrals";
    case Counter::kExecCacheHits: return "exec_cache_hits";
    case Counter::kExecCacheMisses: return "exec_cache_misses";
    case Counter::kHandlerRuns: return "handler_runs";
    case Counter::kCachedReplays: return "cached_replays";
    case Counter::kSoundnessJobs: return "soundness_jobs";
    case Counter::kCount: break;
  }
  return "unknown";
}

void TimeHist::add(double secs) {
  const double ns = secs * 1e9;
  std::size_t bucket = 0;
  if (ns >= 1.0) {
    // floor(log2) + 1: [2^(i-1), 2^i) ns lands in bucket i, [1,2) in 1.
    bucket = static_cast<std::size_t>(std::floor(std::log2(ns))) + 1;
    if (bucket >= kBuckets) bucket = kBuckets - 1;
  }
  ++count[bucket];
  total_s += secs;
}

void TimeHist::merge(const TimeHist& o) {
  for (std::size_t i = 0; i < kBuckets; ++i) count[i] += o.count[i];
  total_s += o.total_s;
}

std::uint64_t TimeHist::samples() const {
  std::uint64_t n = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) n += count[i];
  return n;
}

bool RuleKey::operator<(const RuleKey& o) const {
  return std::tie(node, is_message, kind) < std::tie(o.node, o.is_message, o.kind);
}

ProfileSink::ProfileSink() : uid_(next_sink_uid()) {}

void ProfileSink::count(Counter c, std::uint64_t delta) {
  master_.counters[static_cast<std::size_t>(c)] += delta;
}

void ProfileSink::count_shard(std::size_t shard, bool hit) {
  if (shard >= kProfShards) return;
  if (hit) {
    ++master_.shard_hits[shard];
  } else {
    ++master_.shard_misses[shard];
  }
}

void ProfileSink::rule(const RuleKey& key, bool cached, std::uint64_t ser_bytes,
                       std::uint64_t hash_bytes, double exec_s) {
  RuleProf& r = rules_[key];
  if (cached) {
    ++r.cached;
  } else {
    ++r.runs;
    // Only real executions feed the histogram: a cached replay has no
    // handler wall time, and a zero-duration sample would distort bucket 0.
    r.time.add(exec_s);
  }
  r.ser_bytes += ser_bytes;
  r.hash_bytes += hash_bytes;
}

void ProfileSink::phase_wall(Phase p, double secs) {
  master_.phase_s[static_cast<std::size_t>(p)] += secs;
}

void ProfileSink::run_wall(double elapsed_s) {
  if (elapsed_s > run_wall_s_) run_wall_s_ = elapsed_s;
}

ProfileSink::Lane* ProfileSink::this_thread_lane() {
  // Same owner-only pattern as TraceSink::this_thread_lane: keyed by the
  // sink uid so destroyed/reallocated sinks cannot alias, holding the
  // Lane* directly so lanes_ growth never invalidates it.
  struct Cache {
    std::uint64_t uid = 0;
    Lane* lane = nullptr;
  };
  thread_local Cache cache;
  if (cache.uid == uid_) return cache.lane;
  std::lock_guard<std::mutex> lock(lanes_mu_);
  auto lane = std::make_unique<Lane>();
  Lane* raw = lane.get();
  lanes_.push_back(std::move(lane));
  cache = Cache{uid_, raw};
  return raw;
}

void ProfileSink::count_worker(Counter c, std::uint64_t delta) {
  this_thread_lane()->slab.counters[static_cast<std::size_t>(c)] += delta;
}

void ProfileSink::time_worker(Phase p, double secs) {
  this_thread_lane()->slab.phase_s[static_cast<std::size_t>(p)] += secs;
}

void ProfileSink::drain_workers() {
  std::lock_guard<std::mutex> lock(lanes_mu_);
  // Identity fields are sums, so fold order cannot matter; attribution
  // (phase seconds) is summed too — totals are lane-order-invariant.
  for (auto& lane : lanes_) {
    Slab& s = lane->slab;
    for (std::size_t i = 0; i < kCounterCount; ++i) {
      master_.counters[i] += s.counters[i];
      s.counters[i] = 0;
    }
    for (std::size_t i = 0; i < kProfShards; ++i) {
      master_.shard_hits[i] += s.shard_hits[i];
      s.shard_hits[i] = 0;
      master_.shard_misses[i] += s.shard_misses[i];
      s.shard_misses[i] = 0;
    }
    for (std::size_t i = 0; i < kPhaseCount; ++i) {
      master_.phase_s[i] += s.phase_s[i];
      s.phase_s[i] = 0.0;
    }
  }
}

std::uint64_t ProfileSink::counter(Counter c) const {
  return master_.counters[static_cast<std::size_t>(c)];
}

std::uint64_t ProfileSink::shard_hits(std::size_t shard) const {
  return shard < kProfShards ? master_.shard_hits[shard] : 0;
}

std::uint64_t ProfileSink::shard_misses(std::size_t shard) const {
  return shard < kProfShards ? master_.shard_misses[shard] : 0;
}

double ProfileSink::phase_seconds(Phase p) const {
  return master_.phase_s[static_cast<std::size_t>(p)];
}

std::size_t ProfileSink::lanes() const {
  std::lock_guard<std::mutex> lock(lanes_mu_);
  return lanes_.size();
}

void ProfileSink::clear() {
  master_ = Slab{};
  rules_.clear();
  run_wall_s_ = 0.0;
  std::lock_guard<std::mutex> lock(lanes_mu_);
  for (auto& lane : lanes_) lane->slab = Slab{};
}

std::string ProfileSink::identity_text() const {
  // Canonical identity rendering: fixed field order, decimal integers only.
  // Deliberately excludes threads_, run_wall_s_, phase_s and histograms —
  // those are attribution and differ between machines/thread counts.
  std::string out = "lmc-prof-identity/1\n";
  for (std::size_t i = 0; i < kCounterCount; ++i) {
    out += "counter ";
    out += to_string(static_cast<Counter>(i));
    out += ' ';
    out += std::to_string(master_.counters[i]);
    out += '\n';
  }
  for (std::size_t i = 0; i < kProfShards; ++i) {
    out += "shard " + std::to_string(i) + ' ' +
           std::to_string(master_.shard_hits[i]) + ' ' +
           std::to_string(master_.shard_misses[i]) + '\n';
  }
  for (const auto& [key, r] : rules_) {
    out += "rule " + std::to_string(key.node) + ' ' +
           (key.is_message != 0 ? std::string("msg") : std::string("int")) + ' ' +
           std::to_string(key.kind) + " runs=" + std::to_string(r.runs) +
           " cached=" + std::to_string(r.cached) +
           " ser=" + std::to_string(r.ser_bytes) +
           " hash=" + std::to_string(r.hash_bytes) + '\n';
  }
  return out;
}

std::string ProfileSink::to_jsonl() const {
  std::string out = "{\"schema\":\"lmc-prof/1\",\"kind\":\"meta\",\"version\":1";
  out += ",\"threads\":" + std::to_string(threads_);
  out += ",\"run_wall_s\":" + json_double(run_wall_s_);
  out += "}\n";
  for (std::size_t i = 0; i < kCounterCount; ++i) {
    out += "{\"schema\":\"lmc-prof/1\",\"kind\":\"counter\",\"name\":";
    out += json_quote(to_string(static_cast<Counter>(i)));
    out += ",\"value\":" + std::to_string(master_.counters[i]);
    out += "}\n";
  }
  for (std::size_t i = 0; i < kProfShards; ++i) {
    out += "{\"schema\":\"lmc-prof/1\",\"kind\":\"shard\",\"shard\":" +
           std::to_string(i);
    out += ",\"hits\":" + std::to_string(master_.shard_hits[i]);
    out += ",\"misses\":" + std::to_string(master_.shard_misses[i]);
    out += "}\n";
  }
  for (const auto& [key, r] : rules_) {
    out += "{\"schema\":\"lmc-prof/1\",\"kind\":\"rule\",\"node\":" +
           std::to_string(key.node);
    out += ",\"rule\":";
    out += key.is_message != 0 ? "\"message\"" : "\"internal\"";
    out += ",\"event\":" + std::to_string(key.kind);
    out += ",\"runs\":" + std::to_string(r.runs);
    out += ",\"cached\":" + std::to_string(r.cached);
    out += ",\"ser_bytes\":" + std::to_string(r.ser_bytes);
    out += ",\"hash_bytes\":" + std::to_string(r.hash_bytes);
    out += ",\"exec_s\":" + json_double(r.time.total_s);
    out += ",\"hist\":[";
    bool first = true;
    for (std::size_t b = 0; b < TimeHist::kBuckets; ++b) {
      if (r.time.count[b] == 0) continue;
      if (!first) out += ',';
      first = false;
      out += '[' + std::to_string(b) + ',' + std::to_string(r.time.count[b]) + ']';
    }
    out += "]}\n";
  }
  for (std::size_t p = 0; p < kPhaseCount; ++p) {
    if (master_.phase_s[p] == 0.0) continue;
    out += "{\"schema\":\"lmc-prof/1\",\"kind\":\"phase\",\"phase\":";
    out += json_quote(phase_name(p));
    out += ",\"wall_s\":" + json_double(master_.phase_s[p]);
    out += "}\n";
  }
  return out;
}

void ProfileSink::write_jsonl(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) throw std::runtime_error("cannot write profile file " + path);
  const std::string text = to_jsonl();
  std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
}

namespace {

bool prof_object(const std::string& line, JsonValue& v, std::string& kind) {
  if (!json_parse(line, v) || !v.is_object()) return false;
  const JsonValue* schema = v.get("schema");
  if (schema == nullptr || !schema->is_string() || schema->str != "lmc-prof/1") {
    return false;
  }
  const JsonValue* k = v.get("kind");
  if (k == nullptr || !k->is_string()) return false;
  kind = k->str;
  return true;
}

std::uint64_t get_u64(const JsonValue& v, const char* key) {
  const JsonValue* f = v.get(key);
  return f != nullptr && f->is_number() ? f->as_u64() : 0;
}

double get_dbl(const JsonValue& v, const char* key) {
  const JsonValue* f = v.get(key);
  return f != nullptr && f->is_number() ? f->as_double() : 0.0;
}

}  // namespace

bool merge_prof_line(const std::string& line, ProfileData& data) {
  JsonValue v;
  std::string kind;
  if (!prof_object(line, v, kind)) return false;

  if (kind == "meta") {
    const unsigned threads = static_cast<unsigned>(get_u64(v, "threads"));
    if (threads > data.threads) data.threads = threads;
    const double wall = get_dbl(v, "run_wall_s");
    if (wall > data.run_wall_s) data.run_wall_s = wall;
  } else if (kind == "counter") {
    const JsonValue* name = v.get("name");
    if (name == nullptr || !name->is_string()) return false;
    for (std::size_t i = 0; i < kCounterCount; ++i) {
      if (name->str == to_string(static_cast<Counter>(i))) {
        data.counters[i] += get_u64(v, "value");
        break;
      }
    }
  } else if (kind == "shard") {
    const std::uint64_t shard = get_u64(v, "shard");
    if (shard >= kProfShards) return false;
    data.shard_hits[shard] += get_u64(v, "hits");
    data.shard_misses[shard] += get_u64(v, "misses");
  } else if (kind == "rule") {
    RuleKey key;
    key.node = static_cast<std::uint32_t>(get_u64(v, "node"));
    const JsonValue* rk = v.get("rule");
    key.is_message = (rk != nullptr && rk->is_string() && rk->str == "message") ? 1 : 0;
    key.kind = static_cast<std::uint32_t>(get_u64(v, "event"));
    ProfileData::Rule& r = data.rules[key];
    r.key = key;
    r.runs += get_u64(v, "runs");
    r.cached += get_u64(v, "cached");
    r.ser_bytes += get_u64(v, "ser_bytes");
    r.hash_bytes += get_u64(v, "hash_bytes");
    r.exec_s += get_dbl(v, "exec_s");
    if (const JsonValue* hist = v.get("hist");
        hist != nullptr && hist->kind == JsonValue::Kind::kArray) {
      for (const JsonValue& pair : hist->items) {
        if (pair.kind != JsonValue::Kind::kArray || pair.items.size() != 2) continue;
        const auto bucket = static_cast<std::uint32_t>(pair.items[0].as_u64());
        const std::uint64_t n = pair.items[1].as_u64();
        r.samples += n;
        bool merged = false;
        for (auto& [b, c] : r.hist) {
          if (b == bucket) {
            c += n;
            merged = true;
            break;
          }
        }
        if (!merged) r.hist.emplace_back(bucket, n);
      }
      std::sort(r.hist.begin(), r.hist.end());
    }
  } else if (kind == "phase") {
    const JsonValue* p = v.get("phase");
    if (p == nullptr || !p->is_string()) return false;
    for (std::size_t i = 0; i < kPhaseCount; ++i) {
      if (p->str == phase_name(i)) {
        data.phase_s[i] += get_dbl(v, "wall_s");
        break;
      }
    }
  } else {
    return false;
  }
  ++data.lines;
  return true;
}

bool validate_prof_value(const JsonValue& v, std::string* err) {
  auto fail = [&](const std::string& why) {
    if (err != nullptr) *err = why;
    return false;
  };
  const JsonValue* k = v.get("kind");
  if (k == nullptr || !k->is_string()) return fail("lmc-prof/1 line missing \"kind\"");
  auto need_num = [&](const char* key) {
    const JsonValue* f = v.get(key);
    return f != nullptr && f->is_number();
  };
  if (k->str == "meta") {
    if (!need_num("version")) return fail("prof meta line missing \"version\"");
    if (!need_num("threads")) return fail("prof meta line missing \"threads\"");
    return true;
  }
  if (k->str == "counter") {
    const JsonValue* name = v.get("name");
    if (name == nullptr || !name->is_string()) {
      return fail("prof counter line missing \"name\"");
    }
    bool known = false;
    for (std::size_t i = 0; i < kCounterCount; ++i) {
      if (name->str == to_string(static_cast<Counter>(i))) known = true;
    }
    if (!known) return fail("prof counter line has unknown name " + name->str);
    if (!need_num("value")) return fail("prof counter line missing \"value\"");
    return true;
  }
  if (k->str == "shard") {
    if (!need_num("shard") || !need_num("hits") || !need_num("misses")) {
      return fail("prof shard line missing shard/hits/misses");
    }
    if (v.get("shard")->as_u64() >= kProfShards) {
      return fail("prof shard index out of range");
    }
    return true;
  }
  if (k->str == "rule") {
    const JsonValue* rk = v.get("rule");
    if (rk == nullptr || !rk->is_string() ||
        (rk->str != "message" && rk->str != "internal")) {
      return fail("prof rule line needs \"rule\":\"message\"|\"internal\"");
    }
    for (const char* key : {"node", "event", "runs", "cached", "ser_bytes",
                            "hash_bytes", "exec_s"}) {
      if (!need_num(key)) {
        return fail(std::string("prof rule line missing \"") + key + "\"");
      }
    }
    const JsonValue* hist = v.get("hist");
    if (hist == nullptr || hist->kind != JsonValue::Kind::kArray) {
      return fail("prof rule line missing \"hist\" array");
    }
    for (const JsonValue& pair : hist->items) {
      if (pair.kind != JsonValue::Kind::kArray || pair.items.size() != 2 ||
          !pair.items[0].is_number() || !pair.items[1].is_number()) {
        return fail("prof rule hist entries must be [bucket,count] pairs");
      }
      if (pair.items[0].as_u64() >= TimeHist::kBuckets) {
        return fail("prof rule hist bucket out of range");
      }
    }
    return true;
  }
  if (k->str == "phase") {
    const JsonValue* p = v.get("phase");
    if (p == nullptr || !p->is_string()) return fail("prof phase line missing \"phase\"");
    bool known = false;
    for (std::size_t i = 0; i < kPhaseCount; ++i) {
      if (p->str == phase_name(i)) known = true;
    }
    if (!known) return fail("prof phase line has unknown phase " + p->str);
    if (!need_num("wall_s")) return fail("prof phase line missing \"wall_s\"");
    return true;
  }
  return fail("lmc-prof/1 line has unknown kind " + k->str);
}

}  // namespace lmc::obs
