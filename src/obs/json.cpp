#include "obs/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace lmc::obs {

namespace {

struct Parser {
  const char* p;
  const char* end;
  std::string err;

  bool fail(const std::string& what) {
    if (err.empty()) err = what;
    return false;
  }

  void skip_ws() {
    while (p < end && (*p == ' ' || *p == '\t' || *p == '\n' || *p == '\r')) ++p;
  }

  bool literal(const char* s) {
    const char* q = p;
    while (*s != '\0') {
      if (q >= end || *q != *s) return false;
      ++q;
      ++s;
    }
    p = q;
    return true;
  }

  bool parse_string(std::string& out) {
    if (p >= end || *p != '"') return fail("expected string");
    ++p;
    out.clear();
    while (p < end && *p != '"') {
      if (*p == '\\') {
        ++p;
        if (p >= end) return fail("unterminated escape");
        switch (*p) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (end - p < 5) return fail("truncated \\u escape");
            unsigned cp = 0;
            for (int i = 1; i <= 4; ++i) {
              const char c = p[i];
              cp <<= 4;
              if (c >= '0' && c <= '9') cp |= static_cast<unsigned>(c - '0');
              else if (c >= 'a' && c <= 'f') cp |= static_cast<unsigned>(c - 'a' + 10);
              else if (c >= 'A' && c <= 'F') cp |= static_cast<unsigned>(c - 'A' + 10);
              else return fail("bad \\u escape");
            }
            p += 4;
            // UTF-8 encode (surrogate pairs are left as-is: the obs
            // records never emit them).
            if (cp < 0x80) {
              out += static_cast<char>(cp);
            } else if (cp < 0x800) {
              out += static_cast<char>(0xc0 | (cp >> 6));
              out += static_cast<char>(0x80 | (cp & 0x3f));
            } else {
              out += static_cast<char>(0xe0 | (cp >> 12));
              out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
              out += static_cast<char>(0x80 | (cp & 0x3f));
            }
            break;
          }
          default: return fail("unknown escape");
        }
        ++p;
      } else {
        out += *p++;
      }
    }
    if (p >= end) return fail("unterminated string");
    ++p;  // closing quote
    return true;
  }

  bool parse_value(JsonValue& v, int depth) {
    if (depth > 64) return fail("nesting too deep");
    skip_ws();
    if (p >= end) return fail("unexpected end of input");
    if (*p == '{') {
      ++p;
      v.kind = JsonValue::Kind::kObject;
      skip_ws();
      if (p < end && *p == '}') {
        ++p;
        return true;
      }
      while (true) {
        skip_ws();
        std::string key;
        if (!parse_string(key)) return false;
        skip_ws();
        if (p >= end || *p != ':') return fail("expected ':'");
        ++p;
        JsonValue val;
        if (!parse_value(val, depth + 1)) return false;
        v.fields.emplace_back(std::move(key), std::move(val));
        skip_ws();
        if (p < end && *p == ',') {
          ++p;
          continue;
        }
        if (p < end && *p == '}') {
          ++p;
          return true;
        }
        return fail("expected ',' or '}'");
      }
    }
    if (*p == '[') {
      ++p;
      v.kind = JsonValue::Kind::kArray;
      skip_ws();
      if (p < end && *p == ']') {
        ++p;
        return true;
      }
      while (true) {
        JsonValue item;
        if (!parse_value(item, depth + 1)) return false;
        v.items.push_back(std::move(item));
        skip_ws();
        if (p < end && *p == ',') {
          ++p;
          continue;
        }
        if (p < end && *p == ']') {
          ++p;
          return true;
        }
        return fail("expected ',' or ']'");
      }
    }
    if (*p == '"') {
      v.kind = JsonValue::Kind::kString;
      return parse_string(v.str);
    }
    if (literal("true")) {
      v.kind = JsonValue::Kind::kBool;
      v.boolean = true;
      return true;
    }
    if (literal("false")) {
      v.kind = JsonValue::Kind::kBool;
      v.boolean = false;
      return true;
    }
    if (literal("null")) {
      v.kind = JsonValue::Kind::kNull;
      return true;
    }
    // Number.
    const char* start = p;
    if (p < end && *p == '-') ++p;
    while (p < end && *p >= '0' && *p <= '9') ++p;
    if (p < end && *p == '.') {
      ++p;
      while (p < end && *p >= '0' && *p <= '9') ++p;
    }
    if (p < end && (*p == 'e' || *p == 'E')) {
      ++p;
      if (p < end && (*p == '+' || *p == '-')) ++p;
      while (p < end && *p >= '0' && *p <= '9') ++p;
    }
    if (p == start) return fail("unexpected character");
    v.kind = JsonValue::Kind::kNumber;
    v.raw.assign(start, p);
    v.number = std::strtod(v.raw.c_str(), nullptr);
    return true;
  }
};

}  // namespace

const JsonValue* JsonValue::get(const std::string& key) const {
  for (const auto& [k, val] : fields)
    if (k == key) return &val;
  return nullptr;
}

std::uint64_t JsonValue::as_u64() const {
  if (kind != Kind::kNumber) return 0;
  if (!raw.empty() && raw.find_first_of(".eE-") == std::string::npos)
    return std::strtoull(raw.c_str(), nullptr, 10);
  return number < 0 ? 0 : static_cast<std::uint64_t>(number);
}

double JsonValue::as_double() const { return kind == Kind::kNumber ? number : 0.0; }

bool json_parse(const std::string& text, JsonValue& out, std::string* err) {
  Parser ps{text.data(), text.data() + text.size(), {}};
  out = JsonValue{};
  if (!ps.parse_value(out, 0)) {
    if (err != nullptr) *err = ps.err;
    return false;
  }
  ps.skip_ws();
  if (ps.p != ps.end) {
    if (err != nullptr) *err = "trailing garbage after document";
    return false;
  }
  return true;
}

std::string json_quote(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

std::string json_double(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

}  // namespace lmc::obs
