// Structured exploration tracing (observability layer, DESIGN.md §10).
//
// A TraceSink collects typed, phase/round/worker-attributed events from one
// checker run (or a sequence of warm/online runs sharing the sink). Two
// append paths exist:
//  * record() — the checker's deterministic merge/apply path (single thread)
//    appends straight to the master stream;
//  * record_worker() — pool workers append to per-lane buffers (one buffer
//    per thread, owner-only writes, no locks on the hot path); at the end of
//    each parallel phase the calling thread drains the buffers into the
//    master stream, stable-sorted by the event's deterministic `seq` key
//    (the task/job enumeration index).
// Because drains happen at the same deterministic points where the checker
// merges worker results, the master stream's IDENTITY content — everything
// except wall timestamps, durations and lane attribution — is a pure
// function of the exploration, i.e. identical for any thread count and
// byte-identical between traced runs (tests/test_obs.cpp pins this, along
// with non-perturbation: tracing on vs. off changes no checker output).
// One deliberate exception: kRunBegin's `c` records the configured thread
// count (reports want it), so thread-count comparisons mask that field.
//
// Cost contract: tracing is compiled in but off by default. Every hot-path
// call site is guarded by the LMC_TRACE macro below, which evaluates its
// arguments ONLY when a sink is attached — a null-pointer test is the whole
// disabled-path cost, and no allocation happens when off.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace lmc::obs {

/// Which part of the checker emitted the event (the "where did time go"
/// axis of lmc_report).
enum class Phase : std::uint8_t {
  kRun = 0,        ///< run/round lifecycle markers
  kExplore = 1,    ///< handler execution + store/I+ growth
  kSweep = 2,      ///< combination enumeration (system-state creation)
  kSoundness = 3,  ///< soundness verification of preliminary violations
  kDrain = 4,      ///< phase-2 deferred drain
  kCheckpoint = 5, ///< auto-checkpointing
  kOnline = 6,     ///< CrystalBall period loop
};

enum class EventType : std::uint8_t {
  kRunBegin = 0,         ///< a=mode (0 init, 1 warm, 2 resume), b=base transitions, c=threads
  kRunEnd = 1,           ///< a=transitions, b=confirmed, c=completed; dur=elapsed_s (cumulative)
  kRoundBegin = 2,       ///< a=tasks collected
  kRoundEnd = 3,         ///< a=tasks, b=total node states, c=I+ size; dur=round wall s
  kHandlerRun = 4,       ///< worker: a=is_message, b=ev_hash, c=cached; dur=exec s; seq=task idx
  kHandlerApply = 5,     ///< apply: a=cached, b=ev_hash, c=outcome (0 new, 1 dedup, 2 self-loop, 3 assert-discard)
  kStateInsert = 6,      ///< a=state idx, b=state hash, c=chain depth
  kIplusAppend = 7,      ///< a=msg hash, b=I+ size after; node=dst
  kComboSweep = 8,       ///< a=site (0 apply, 1 warm root, 2 snapshot), b=combos checked, c=prelims; dur=sweep+verify wall s
  kSoundnessRun = 9,     ///< worker: a=verdict kind, dur=verify s; seq=job idx
  kSoundnessVerdict = 10,///< merge: a=verdict kind, b=schedules checked, c=phase2; dur=verify s; seq=job idx
  kSoundnessPhase = 11,  ///< one verify_prelims call: a=jobs, b=phase2; dur=wall s
  kDeferralDrain = 12,   ///< phase-2 drain: a=jobs drained; dur=wall s
  kCheckpointSave = 13,  ///< a=ok, b=checkpoints_written so far; dur=save wall s
  kWarmMerge = 14,       ///< a=new roots, b=root hits, c=msgs reused
  kOnlinePeriod = 15,    ///< a=period idx, b=transitions, c=found; dur=checker wall s
  kWorkerError = 16,     ///< a=secondary worker exceptions dropped, b=source (0 pipeline, 1 pool)
  kPorPrune = 17,        ///< a=deliveries pruned this round, b=cumulative pruned, c=conservative skips
  kPorResolve = 18,      ///< a=independence-relation pairs, b=relation digest, c=unclassifiable pairs
};

/// Verdict kinds carried by kSoundnessRun / kSoundnessVerdict `a`.
enum : std::uint64_t {
  kVerdictSkipped = 0,  ///< budget/cancel hit before the job ran
  kVerdictFeasSkip = 1, ///< rejected by the per-member feasibility pre-check
  kVerdictSound = 2,
  kVerdictUnsound = 3,
  kVerdictDefer = 4,
};

struct TraceEvent {
  EventType type = EventType::kRunBegin;
  Phase phase = Phase::kRun;
  std::uint16_t lane = 0;      ///< worker lane (attribution only, not identity)
  std::uint32_t round = 0;     ///< exploration round (0 before the first)
  std::uint32_t node = kNoNode;///< node the event concerns, or kNoNode
  std::uint64_t seq = 0;       ///< deterministic ordering key for worker events
  std::uint64_t a = 0, b = 0, c = 0;  ///< typed payload (see EventType)
  double t = 0.0;              ///< seconds since sink creation (not identity)
  double dur = 0.0;            ///< duration in seconds; 0 when n/a

  static constexpr std::uint32_t kNoNode = 0xffffffffu;
};

const char* to_string(EventType t);
const char* to_string(Phase p);

class TraceSink {
 public:
  TraceSink();

  /// Append from the checker's deterministic (calling) thread.
  void record(TraceEvent ev);
  /// Append from a pool worker: goes to the calling thread's lane buffer.
  /// Owner-only writes — no lock is taken after the lane is registered.
  void record_worker(TraceEvent ev);
  /// Merge all lane buffers into the master stream, stable-sorted by seq.
  /// Must be called from the deterministic thread while workers are idle
  /// (i.e. after the pool fan-out returned).
  void drain_workers();

  /// Master stream (drained + ordered events, in deterministic order).
  const std::vector<TraceEvent>& events() const { return events_; }
  /// Worker events still sitting in lane buffers (normally 0 after a run).
  std::size_t undrained() const;
  std::size_t lanes() const;

  /// Seconds since the sink was created (the `t` origin).
  double since_start() const;

  void clear();

  /// Serialize the master stream as JSON lines ("lmc-trace/1": one object
  /// per event, numeric fields round-trip exactly via %.17g).
  void write_jsonl(const std::string& path) const;
  std::string to_jsonl() const;

 private:
  struct Lane {
    std::uint16_t id = 0;
    std::vector<TraceEvent> buf;
  };
  Lane* this_thread_lane();

  double t0_;
  std::uint64_t uid_;  ///< process-unique; keys the thread-local lane cache
  std::vector<TraceEvent> events_;
  mutable std::mutex lanes_mu_;  ///< guards lane registration/growth only
  std::vector<std::unique_ptr<Lane>> lanes_;
};

/// One trace event as a JSONL line (shared by the sink and tests).
std::string to_jsonl_line(const TraceEvent& ev);

/// Parse one "lmc-trace/1" JSONL line back into an event. Returns false on
/// anything that is not a trace event line (reports tolerate mixed files).
bool parse_jsonl_line(const std::string& line, TraceEvent& ev);

/// The identity projection of an event — everything the determinism
/// contract covers. Timestamps, durations and lane are attribution, not
/// identity: they differ between runs of the same exploration.
struct EventIdentity {
  std::uint8_t type = 0;
  std::uint8_t phase = 0;
  std::uint32_t round = 0;
  std::uint32_t node = 0;
  std::uint64_t seq = 0;
  std::uint64_t a = 0, b = 0, c = 0;
  bool operator==(const EventIdentity&) const = default;
  bool operator<(const EventIdentity& o) const;
};
EventIdentity identity(const TraceEvent& ev);
std::vector<EventIdentity> identities(const std::vector<TraceEvent>& evs);

}  // namespace lmc::obs

/// Hot-path guard: evaluates `call` (a member call on the sink) only when a
/// sink is attached. `sink` must be a TraceSink*.
#define LMC_TRACE(sink, call)          \
  do {                                 \
    if ((sink) != nullptr) (sink)->call; \
  } while (0)
