#include "obs/baseline.hpp"

#include <algorithm>
#include <cinttypes>
#include <cmath>

#include "obs/json.hpp"

namespace lmc::obs {

namespace {

bool ends_with_s(const std::string& name) {
  return name.size() >= 2 && name.compare(name.size() - 2, 2, "_s") == 0;
}

std::string record_key(const JsonValue& v) {
  const JsonValue* bench = v.get("bench");
  const JsonValue* label = v.get("case");
  std::string key = (bench != nullptr ? bench->str : "?") + "|" +
                    (label != nullptr ? label->str : "?");
  if (const JsonValue* params = v.get("params"); params != nullptr && params->is_object()) {
    std::vector<std::string> parts;
    for (const auto& [name, val] : params->fields) {
      std::string s = name + "=";
      if (val.is_string()) s += val.str;
      else if (val.is_number()) s += val.raw;
      else if (val.is_bool()) s += val.boolean ? "true" : "false";
      parts.push_back(std::move(s));
    }
    std::sort(parts.begin(), parts.end());
    for (const std::string& p : parts) key += "|" + p;
  }
  return key;
}

}  // namespace

std::map<std::string, std::map<std::string, double>> parse_bench_records(
    const std::vector<std::string>& lines) {
  std::map<std::string, std::map<std::string, double>> out;
  for (const std::string& line : lines) {
    JsonValue v;
    if (!json_parse(line, v) || !v.is_object()) continue;
    const JsonValue* schema = v.get("schema");
    if (schema == nullptr || !schema->is_string() || schema->str != "lmc-bench/1") continue;
    const JsonValue* metrics = v.get("metrics");
    if (metrics == nullptr || !metrics->is_object()) continue;
    std::map<std::string, double>& dst = out[record_key(v)];
    dst.clear();  // last record with this key wins
    for (const auto& [name, val] : metrics->fields)
      if (val.is_number()) dst[name] = val.as_double();
  }
  return out;
}

BaselineComparison compare_benches(
    const std::map<std::string, std::map<std::string, double>>& baseline,
    const std::map<std::string, std::map<std::string, double>>& current) {
  BaselineComparison cmp;
  for (const auto& [key, base_metrics] : baseline) {
    auto cur_it = current.find(key);
    if (cur_it == current.end()) {
      // The whole case is absent from the current run (bench skipped or
      // renamed) — one "missing" entry, not one only_baseline per metric.
      cmp.missing_cases.push_back(key);
      continue;
    }
    for (const auto& [name, base_val] : base_metrics) {
      auto m = cur_it->second.find(name);
      if (m == cur_it->second.end()) {
        cmp.only_baseline.push_back(key + " " + name);
        continue;
      }
      BaselineComparison::Row row;
      row.key = key;
      row.metric = name;
      row.base = base_val;
      row.current = m->second;
      row.time_metric = ends_with_s(name);
      cmp.rows.push_back(std::move(row));
    }
  }
  for (const auto& [key, cur_metrics] : current) {
    auto base_it = baseline.find(key);
    for (const auto& [name, val] : cur_metrics) {
      (void)val;
      if (base_it == baseline.end() || base_it->second.count(name) == 0)
        cmp.only_current.push_back(key + " " + name);
    }
  }
  return cmp;
}

std::size_t print_baseline_report(const BaselineComparison& cmp, double fail_over_pct,
                                  std::FILE* out) {
  std::size_t regressions = 0;
  std::string last_key;
  for (const BaselineComparison::Row& r : cmp.rows) {
    if (r.key != last_key) {
      std::fprintf(out, "%s\n", r.key.c_str());
      last_key = r.key;
    }
    const double delta = r.current - r.base;
    const double pct = r.base != 0.0 ? delta / r.base * 100.0
                                     : (delta == 0.0 ? 0.0 : HUGE_VAL);
    bool regressed = false;
    if (fail_over_pct >= 0.0 && r.time_metric && r.base >= 0.0 &&
        r.current > r.base * (1.0 + fail_over_pct / 100.0)) {
      regressed = true;
      ++regressions;
    }
    std::fprintf(out, "  %-28s %14.6g -> %14.6g  (%+.1f%%)%s\n", r.metric.c_str(), r.base,
                 r.current, pct, regressed ? "  REGRESSION" : "");
  }
  for (const std::string& s : cmp.missing_cases)
    std::fprintf(out, "missing: %s (baseline case with no current record)\n", s.c_str());
  for (const std::string& s : cmp.only_baseline)
    std::fprintf(out, "only in baseline: %s\n", s.c_str());
  for (const std::string& s : cmp.only_current)
    std::fprintf(out, "new (no baseline): %s\n", s.c_str());
  std::fprintf(out,
               "lmc_report --baseline: %zu metric(s) compared, %zu missing case(s), "
               "%zu regression(s)\n",
               cmp.rows.size(), cmp.missing_cases.size(), regressions);
  return regressions;
}

}  // namespace lmc::obs
