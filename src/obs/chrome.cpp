#include "obs/chrome.hpp"

#include <algorithm>
#include <cstdint>
#include <set>

#include "obs/json.hpp"

namespace lmc::obs {

namespace {

/// Microseconds field: Chrome's ts/dur unit. Clamped at zero — an "X" start
/// computed as t - dur can go fractionally negative through float error.
std::string usec(double seconds) {
  return json_double(seconds < 0.0 ? 0.0 : seconds * 1e6);
}

void append_event(std::string& out, bool& first, const std::string& body) {
  if (!first) out += ",\n";
  first = false;
  out += body;
}

std::string meta_thread(std::uint32_t tid, const std::string& name) {
  std::string s = "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":1,\"tid\":";
  s += std::to_string(tid);
  s += ",\"args\":{\"name\":" + json_quote(name) + "}}";
  return s;
}

}  // namespace

std::string chrome_trace_json(const std::vector<TraceEvent>& events,
                              const std::vector<MetricsRecord>& metrics,
                              const ProfileData* prof) {
  std::string out = "{\"traceEvents\":[\n";
  bool first = true;

  // Process + thread metadata: one row per lane seen in the stream.
  append_event(out, first,
               "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":1,"
               "\"args\":{\"name\":\"lmc checker\"}}");
  std::set<std::uint16_t> lanes;
  for (const TraceEvent& ev : events) lanes.insert(ev.lane);
  for (std::uint16_t lane : lanes) {
    const std::string name =
        lane == 0 ? std::string("applier") : "worker-" + std::to_string(lane);
    append_event(out, first, meta_thread(lane, name));
  }

  double last_t = 0.0;
  for (const TraceEvent& ev : events) {
    if (ev.t > last_t) last_t = ev.t;
    const bool is_round_span = ev.type == EventType::kRoundEnd;
    std::string name = to_string(ev.type);
    if (is_round_span) name = "round " + std::to_string(ev.round);
    std::string s = "{\"name\":" + json_quote(name);
    s += ",\"cat\":" + json_quote(to_string(ev.phase));
    if (ev.dur > 0.0) {
      // Complete event: t was recorded at the END of the operation.
      s += ",\"ph\":\"X\",\"ts\":" + usec(ev.t - ev.dur);
      s += ",\"dur\":" + usec(ev.dur);
    } else {
      s += ",\"ph\":\"i\",\"s\":\"t\",\"ts\":" + usec(ev.t);
    }
    s += ",\"pid\":1,\"tid\":" + std::to_string(ev.lane);
    s += ",\"args\":{\"round\":" + std::to_string(ev.round);
    if (ev.node != TraceEvent::kNoNode) s += ",\"node\":" + std::to_string(ev.node);
    s += ",\"seq\":" + std::to_string(ev.seq);
    s += ",\"a\":" + std::to_string(ev.a);
    s += ",\"b\":" + std::to_string(ev.b);
    s += ",\"c\":" + std::to_string(ev.c);
    s += "}}";
    append_event(out, first, s);
  }

  for (const MetricsRecord& rec : metrics) {
    if (rec.t > last_t) last_t = rec.t;
    std::string s = "{\"ph\":\"C\",\"name\":\"progress\",\"pid\":1,\"tid\":0";
    s += ",\"ts\":" + usec(rec.t);
    s += ",\"args\":{\"transitions\":" + std::to_string(rec.snap.transitions);
    s += ",\"states\":" + std::to_string(rec.snap.states_total);
    s += ",\"iplus\":" + std::to_string(rec.snap.iplus_total);
    s += ",\"deferred\":" + std::to_string(rec.snap.deferred_depth);
    s += "}}";
    append_event(out, first, s);
    std::string r = "{\"ph\":\"C\",\"name\":\"rates\",\"pid\":1,\"tid\":0";
    r += ",\"ts\":" + usec(rec.t);
    r += ",\"args\":{\"states_per_s\":" + json_double(rec.states_per_s);
    r += ",\"iplus_per_s\":" + json_double(rec.iplus_per_s);
    r += ",\"exec_hit_rate\":" + json_double(rec.exec_hit_rate);
    r += "}}";
    append_event(out, first, r);
  }

  if (prof != nullptr) {
    // The profile has no timestamps of its own: emit its counter registry as
    // one final "C" sample so the totals show up as tracks.
    std::string s = "{\"ph\":\"C\",\"name\":\"profile\",\"pid\":1,\"tid\":0";
    s += ",\"ts\":" + usec(last_t);
    s += ",\"args\":{";
    for (std::size_t i = 0; i < static_cast<std::size_t>(Counter::kCount); ++i) {
      if (i != 0) s += ',';
      s += json_quote(to_string(static_cast<Counter>(i)));
      s += ':' + std::to_string(prof->counters[i]);
    }
    s += "}}";
    append_event(out, first, s);
  }

  out += "\n]}\n";
  return out;
}

bool validate_chrome_trace(const std::string& json_text, std::string* err) {
  auto fail = [&](const std::string& why) {
    if (err != nullptr) *err = why;
    return false;
  };
  JsonValue v;
  std::string perr;
  if (!json_parse(json_text, v, &perr)) return fail("not valid JSON: " + perr);
  if (!v.is_object()) return fail("top level is not an object");
  const JsonValue* evs = v.get("traceEvents");
  if (evs == nullptr || evs->kind != JsonValue::Kind::kArray)
    return fail("missing \"traceEvents\" array");
  if (evs->items.empty()) return fail("\"traceEvents\" is empty");
  for (std::size_t i = 0; i < evs->items.size(); ++i) {
    const JsonValue& e = evs->items[i];
    const std::string at = " (event " + std::to_string(i) + ")";
    if (!e.is_object()) return fail("trace event is not an object" + at);
    const JsonValue* ph = e.get("ph");
    if (ph == nullptr || !ph->is_string() || ph->str.empty())
      return fail("trace event missing \"ph\"" + at);
    const JsonValue* pid = e.get("pid");
    if (pid == nullptr || !pid->is_number())
      return fail("trace event missing \"pid\"" + at);
    if (ph->str != "M") {  // metadata events carry no timestamp
      const JsonValue* ts = e.get("ts");
      if (ts == nullptr || !ts->is_number())
        return fail("trace event missing \"ts\"" + at);
    }
  }
  return true;
}

}  // namespace lmc::obs
