#include "analyze/tokenizer.hpp"

#include <cctype>

namespace lmc::analyze {

namespace {

bool ident_start(char c) { return std::isalpha(static_cast<unsigned char>(c)) || c == '_'; }
bool ident_cont(char c) { return std::isalnum(static_cast<unsigned char>(c)) || c == '_'; }

/// Multi-character operators, longest first within each leading char.
constexpr const char* kMultiPunct[] = {
    "<<=", ">>=", "<=>", "...", "->*", "::", "->", "<<", ">>", "<=", ">=", "==", "!=",
    "&&",  "||",  "+=",  "-=",  "*=",  "/=",  "%=", "&=", "|=", "^=", "++", "--", ".*",
};

}  // namespace

TokenizedFile tokenize(std::string_view src) {
  TokenizedFile out;
  std::uint32_t line = 1, col = 1;
  std::size_t i = 0;
  const std::size_t n = src.size();

  auto advance = [&](std::size_t k) {
    for (std::size_t j = 0; j < k && i < n; ++j, ++i) {
      if (src[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
  };

  while (i < n) {
    const char c = src[i];
    // Whitespace.
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == '\v' || c == '\f') {
      advance(1);
      continue;
    }
    // Line comment.
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      const std::uint32_t start_line = line;
      advance(2);
      std::size_t begin = i;
      while (i < n && src[i] != '\n') advance(1);
      out.comments.push_back({std::string(src.substr(begin, i - begin)), start_line});
      continue;
    }
    // Block comment.
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      const std::uint32_t start_line = line;
      advance(2);
      std::size_t begin = i;
      while (i + 1 < n && !(src[i] == '*' && src[i + 1] == '/')) advance(1);
      out.comments.push_back({std::string(src.substr(begin, (i < n ? i : n) - begin)), start_line});
      advance(2);  // consume "*/" (no-op at EOF)
      continue;
    }
    // Preprocessor directive: skip the whole (possibly continued) line.
    if (c == '#' && (out.tokens.empty() || col == 1 ||
                     out.tokens.back().line != line)) {
      while (i < n && src[i] != '\n') {
        if (src[i] == '\\' && i + 1 < n && src[i + 1] == '\n') advance(1);
        advance(1);
      }
      continue;
    }
    // Raw string literal R"delim(...)delim".
    if (c == 'R' && i + 1 < n && src[i + 1] == '"') {
      const std::uint32_t tl = line, tc = col;
      std::size_t d = i + 2;
      while (d < n && src[d] != '(' && src[d] != '"' && src[d] != '\n') ++d;
      if (d < n && src[d] == '(') {
        const std::string delim = ")" + std::string(src.substr(i + 2, d - (i + 2))) + "\"";
        std::size_t end = src.find(delim, d + 1);
        const std::size_t stop = end == std::string_view::npos ? n : end + delim.size();
        std::string text(src.substr(i, stop - i));
        advance(stop - i);
        out.tokens.push_back({TokKind::String, std::move(text), tl, tc});
        continue;
      }
    }
    // String / char literal.
    if (c == '"' || c == '\'') {
      const std::uint32_t tl = line, tc = col;
      const char quote = c;
      std::size_t begin = i;
      advance(1);
      while (i < n && src[i] != quote && src[i] != '\n') {
        if (src[i] == '\\' && i + 1 < n) advance(1);
        advance(1);
      }
      advance(1);  // closing quote (no-op at EOF/newline)
      out.tokens.push_back({quote == '"' ? TokKind::String : TokKind::Char,
                            std::string(src.substr(begin, i - begin)), tl, tc});
      continue;
    }
    // Identifier / keyword.
    if (ident_start(c)) {
      const std::uint32_t tl = line, tc = col;
      std::size_t begin = i;
      while (i < n && ident_cont(src[i])) advance(1);
      out.tokens.push_back({TokKind::Identifier, std::string(src.substr(begin, i - begin)), tl, tc});
      continue;
    }
    // Number (good enough: digits, dots, exponents, hex, digit separators).
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n && std::isdigit(static_cast<unsigned char>(src[i + 1])))) {
      const std::uint32_t tl = line, tc = col;
      std::size_t begin = i;
      while (i < n && (ident_cont(src[i]) || src[i] == '.' || src[i] == '\'' ||
                       ((src[i] == '+' || src[i] == '-') && i > begin &&
                        (src[i - 1] == 'e' || src[i - 1] == 'E' || src[i - 1] == 'p' ||
                         src[i - 1] == 'P'))))
        advance(1);
      out.tokens.push_back({TokKind::Number, std::string(src.substr(begin, i - begin)), tl, tc});
      continue;
    }
    // Punctuation: longest multi-char match first.
    {
      const std::uint32_t tl = line, tc = col;
      std::string text(1, c);
      for (const char* op : kMultiPunct) {
        const std::size_t len = std::char_traits<char>::length(op);
        if (src.substr(i, len) == op) {
          text = op;
          break;
        }
      }
      advance(text.size());
      out.tokens.push_back({TokKind::Punct, std::move(text), tl, tc});
    }
  }
  return out;
}

}  // namespace lmc::analyze
