// Static handler-independence analysis (DESIGN.md §14).
//
// Input: the per-rule footprints a protocol registered on its SystemConfig
// (runtime/footprint.hpp). Output: a conservative pairwise
// `IndependenceRelation` over per-node event keys — (message type) and
// (internal-event kind) pairs whose handlers commute from every state —
// plus lint diagnostics for every near-miss the checker had to classify
// conservatively:
//
//   IN01 indep-unclassifiable-pair  footprints disjoint on every checkable
//                                   axis, but a rule carries assertion
//                                   inputs outside its read set (or an
//                                   injected fail_assert) — kept dependent
//   IN02 indep-declared-unverifiable a DeclaredPair the static checker
//                                   cannot confirm — ADMITTED to the
//                                   relation on the author's word, flagged,
//                                   and left to the runtime commutation
//                                   auditor
//   IN03 indep-missing-metadata     a node without (complete) footprints —
//                                   every pair of that node is dependent
//
// The commutation conditions:
//  * table flavor: keys A != B with aggregated guard/goto sets satisfying
//    G_A∩G_B = ∅, T_A∩G_B = ∅, T_B∩G_A = ∅ — at any state at most one of
//    the two can match, and a non-matching delivery is a pure no-op (the
//    DSL digest folds only on match), so the orders trivially agree;
//  * field flavor: writes(A)∩reads(B) = ∅, writes(B)∩reads(A) = ∅, and any
//    shared written field uses the same commutative MergeKind on both sides
//    and is read by neither. Reads must cover send and assert inputs
//    (footprint.hpp contract), so equal read views imply equal sends.
//
// Self-pairs (a key against itself) are never derived statically: two
// messages of one type can race on the same counter/threshold even when
// the type's footprint is self-disjoint. They can only enter via a
// DeclaredPair — and stay under the auditor.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analyze/lint.hpp"
#include "runtime/footprint.hpp"
#include "runtime/hash.hpp"

namespace lmc::indep {

/// Canonical 64-bit key of an event class at a node.
constexpr std::uint64_t event_key(bool is_message, std::uint32_t key) {
  return (static_cast<std::uint64_t>(is_message ? 1u : 0u) << 32) | key;
}

/// Per-node sorted pair set with a deterministic digest. Queries are
/// order-insensitive; `seal()` must be called once after the last `add`.
class IndependenceRelation {
 public:
  IndependenceRelation() = default;
  explicit IndependenceRelation(std::uint32_t num_nodes) : per_node_(num_nodes) {}

  void add(NodeId node, std::uint64_t a, std::uint64_t b);
  void seal();

  bool independent(NodeId node, std::uint64_t a, std::uint64_t b) const;
  /// Total independent pairs across all nodes.
  std::uint64_t size() const;
  /// Digest of the sealed relation (node, lo, hi) triples in sorted order.
  /// Persisted in checkpoint section 14: a resumed run must prune with the
  /// exact relation the original run pruned with.
  Hash64 digest() const { return digest_; }

 private:
  std::vector<std::vector<std::pair<std::uint64_t, std::uint64_t>>> per_node_;
  Hash64 digest_ = 0;
  bool sealed_ = false;
};

/// Result of the static pass.
struct AnalysisResult {
  IndependenceRelation relation;
  std::vector<analyze::Diagnostic> diagnostics;  ///< IN01/IN02/IN03, sorted
  std::uint64_t derived_pairs = 0;   ///< pairs proven by footprint disjointness
  std::uint64_t declared_pairs = 0;  ///< pairs admitted from DeclaredPair
  std::uint64_t unclassifiable = 0;  ///< IN01 count (conservative fallbacks)
  std::uint64_t nodes_without_metadata = 0;  ///< IN03 count
};

/// Run the checker. `footprints` may be null (every node reports IN03 via a
/// single summary diagnostic and the relation is empty). `source_name` is
/// the display path used in diagnostics (e.g. the .lmc file or protocol
/// name).
AnalysisResult analyze_independence(const ProtocolFootprints* footprints,
                                    std::uint32_t num_nodes, const std::string& source_name);

/// The IN rule table (merged into `lmc_lint --list-rules` output).
const std::vector<analyze::RuleInfo>& indep_rules();

// --- checker-facing knobs ----------------------------------------------------

enum class PorMode : std::uint8_t { kOff = 0, kOn = 1 };

/// `LocalMcOptions::por` — partial-order reduction in phase-1 exploration.
struct PorOptions {
  PorMode mode = PorMode::kOff;
  /// Runtime commutation auditor: re-execute both orders from the serialized
  /// pre-state at prune decisions and throw PorAuditError on divergence.
  bool audit = false;
  /// Audit every Nth prune decision (1 = every decision). Ignored when
  /// `audit` is false.
  std::uint32_t audit_every = 1;
};

/// Counters of the pruner (outside the pinned LocalMcStats, like
/// SymmetryStats). Persisted in checkpoint section 14.
struct PorStats {
  std::uint8_t active = 0;             ///< reduction resolved on for this run
  std::uint64_t relation_pairs = 0;    ///< size of the static relation
  std::uint64_t pairs_pruned = 0;      ///< deliveries skipped by the pruner
  std::uint64_t conservative_skips = 0;  ///< prune candidates rejected for
                                         ///< missing/loop/discard outcomes
  std::uint64_t deferrals = 0;         ///< pairs held one generation for a
                                       ///< pred record still in flight
  std::uint64_t audits = 0;            ///< runtime commutation audits executed
  bool operator==(const PorStats&) const = default;
};

}  // namespace lmc::indep
