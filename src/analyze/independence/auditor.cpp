#include "analyze/independence/auditor.hpp"

#include <algorithm>
#include <vector>

#include "runtime/hash.hpp"

namespace lmc::indep {

namespace {

ExecResult step(const SystemConfig& cfg, NodeId node, const Blob& state, const AuditEvent& e) {
  return e.is_message ? exec_message(cfg, node, state, e.msg)
                      : exec_internal(cfg, node, state, e.ev);
}

std::string describe(const AuditEvent& e) {
  return e.is_message ? "message type " + std::to_string(e.msg.type)
                      : "internal kind " + std::to_string(e.ev.kind);
}

struct OrderOutcome {
  Blob final_state;
  std::vector<Hash64> sent;  ///< sorted multiset over both steps
  bool asserted = false;
};

OrderOutcome run_order(const SystemConfig& cfg, NodeId node, const Blob& pre,
                       const AuditEvent& first, const AuditEvent& second) {
  OrderOutcome out;
  ExecResult r1 = step(cfg, node, pre, first);
  ExecResult r2 = step(cfg, node, r1.state, second);
  out.final_state = std::move(r2.state);
  for (const Message& m : r1.sent) out.sent.push_back(m.hash());
  for (const Message& m : r2.sent) out.sent.push_back(m.hash());
  std::sort(out.sent.begin(), out.sent.end());
  out.asserted = r1.assert_failed || r2.assert_failed;
  return out;
}

}  // namespace

void audit_commutation(const SystemConfig& cfg, NodeId node, const Blob& pre,
                       const AuditEvent& a, const AuditEvent& b) {
  const OrderOutcome ab = run_order(cfg, node, pre, a, b);
  const OrderOutcome ba = run_order(cfg, node, pre, b, a);
  const std::string pair = describe(a) + " / " + describe(b) + " on node " + std::to_string(node);
  if (ab.final_state != ba.final_state)
    throw PorAuditError("por audit: claimed-independent pair " + pair +
                        " reaches different successor states depending on order — the "
                        "registered footprints are wrong");
  if (ab.sent != ba.sent)
    throw PorAuditError("por audit: claimed-independent pair " + pair +
                        " sends different message multisets depending on order — the "
                        "registered footprints are wrong");
  if (ab.asserted != ba.asserted)
    throw PorAuditError("por audit: claimed-independent pair " + pair +
                        " diverges on assert outcome depending on order — the registered "
                        "footprints are wrong");
}

}  // namespace lmc::indep
