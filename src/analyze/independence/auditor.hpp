// Runtime commutation auditor: the dynamic check that keeps the static
// independence relation honest (the lmc_lint / ModelValidityAuditor
// pattern). At a prune decision the checker claims "delivering m after
// e_pred reaches exactly the state that delivering e_pred after m reaches";
// the auditor re-executes BOTH orders from the serialized pre-state and
// throws if the final state bytes, the combined sent multiset, or the
// assert outcomes differ. A divergence means the registered footprints are
// wrong — a metadata bug that would otherwise silently cost soundness.
#pragma once

#include <stdexcept>
#include <string>

#include "runtime/state_machine.hpp"

namespace lmc::indep {

/// A claimed-independent pair diverged under re-execution.
class PorAuditError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// One event of an audited pair.
struct AuditEvent {
  bool is_message = false;
  Message msg;       ///< valid iff is_message
  InternalEvent ev;  ///< valid iff !is_message
};

/// Execute a-then-b and b-then-a from `pre` on `node`; throw PorAuditError
/// naming the divergent aspect, or return silently when the orders agree.
void audit_commutation(const SystemConfig& cfg, NodeId node, const Blob& pre,
                       const AuditEvent& a, const AuditEvent& b);

}  // namespace lmc::indep
