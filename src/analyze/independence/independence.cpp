#include "analyze/independence/independence.hpp"

#include <algorithm>
#include <map>
#include <set>

namespace lmc::indep {

namespace {

const std::vector<analyze::RuleInfo> kIndepRules = {
    {"IN01", "pair with disjoint footprints kept dependent: assertion inputs outside the read set"},
    {"IN02", "declared-independent pair the static checker cannot confirm (admitted, audited)"},
    {"IN03", "node without complete handler footprints: all its pairs conservatively dependent"},
};

/// All rules of one event key, aggregated: the key fires iff ANY of its
/// rules fires, so its effective footprint is the union.
struct KeyAgg {
  bool is_message = false;
  std::uint32_t key = 0;
  std::string label;
  bool any_table = false, any_field = false;
  bool asserts = false;
  std::set<std::string> reads;
  std::map<std::string, MergeKind> writes;  ///< kNone on intra-key conflict
  std::set<std::uint32_t> guards, gotos;
};

enum class Verdict { kIndependent, kDependent, kUnclassifiableAssert };

bool disjoint(const std::set<std::uint32_t>& a, const std::set<std::uint32_t>& b) {
  for (std::uint32_t x : a)
    if (b.count(x)) return false;
  return true;
}

bool field_structurally_disjoint(const KeyAgg& a, const KeyAgg& b) {
  for (const auto& [f, m] : a.writes) {
    if (b.reads.count(f)) return false;
    auto it = b.writes.find(f);
    if (it != b.writes.end()) {
      // Shared written field: both sides must use the same commutative
      // merge, and neither may read it (covered by the read checks).
      if (m == MergeKind::kNone || it->second != m) return false;
      if (a.reads.count(f)) return false;
    }
  }
  for (const auto& [f, m] : b.writes)
    if (a.reads.count(f)) return false;
  return true;
}

Verdict classify(const KeyAgg& a, const KeyAgg& b) {
  const bool a_table = a.any_table && !a.any_field;
  const bool b_table = b.any_table && !b.any_field;
  const bool a_field = a.any_field && !a.any_table;
  const bool b_field = b.any_field && !b.any_table;
  if (a_table && b_table) {
    // At most one of the two keys can match at any control state, and a
    // non-matching delivery is a pure no-op — but only when no rule of the
    // pair can fire an assert (an asserting rule sends before it discards,
    // so "no-op at every non-guard state" must cover assert rows too; the
    // aggregated guard sets do).
    if (!disjoint(a.guards, b.guards) || !disjoint(a.gotos, b.guards) ||
        !disjoint(b.gotos, a.guards))
      return Verdict::kDependent;
    if (a.asserts || b.asserts) return Verdict::kUnclassifiableAssert;
    return Verdict::kIndependent;
  }
  if (a_field && b_field) {
    if (!field_structurally_disjoint(a, b)) return Verdict::kDependent;
    if (a.asserts || b.asserts) return Verdict::kUnclassifiableAssert;
    return Verdict::kIndependent;
  }
  // Mixed or contradictory flavors: nothing to reason with.
  return Verdict::kDependent;
}

}  // namespace

// --- IndependenceRelation ----------------------------------------------------

void IndependenceRelation::add(NodeId node, std::uint64_t a, std::uint64_t b) {
  if (node >= per_node_.size()) per_node_.resize(node + 1);
  if (a > b) std::swap(a, b);
  per_node_[node].emplace_back(a, b);
  sealed_ = false;
}

void IndependenceRelation::seal() {
  Hash64 d = mix64(0x706f72u);  // "por"
  for (std::size_t n = 0; n < per_node_.size(); ++n) {
    auto& v = per_node_[n];
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
    for (const auto& [a, b] : v) {
      d = hash_combine(d, n);
      d = hash_combine(d, a);
      d = hash_combine(d, b);
    }
  }
  digest_ = d;
  sealed_ = true;
}

bool IndependenceRelation::independent(NodeId node, std::uint64_t a, std::uint64_t b) const {
  if (node >= per_node_.size()) return false;
  if (a > b) std::swap(a, b);
  const auto& v = per_node_[node];
  return std::binary_search(v.begin(), v.end(), std::make_pair(a, b));
}

std::uint64_t IndependenceRelation::size() const {
  std::uint64_t n = 0;
  for (const auto& v : per_node_) n += v.size();
  return n;
}

// --- checker -----------------------------------------------------------------

const std::vector<analyze::RuleInfo>& indep_rules() { return kIndepRules; }

AnalysisResult analyze_independence(const ProtocolFootprints* footprints,
                                    std::uint32_t num_nodes, const std::string& source_name) {
  AnalysisResult res;
  res.relation = IndependenceRelation(num_nodes);
  const std::string file = source_name.empty() ? "<protocol>" : source_name;

  if (footprints == nullptr) {
    res.nodes_without_metadata = num_nodes;
    res.diagnostics.push_back(
        {"IN03", file, 1, 1,
         "protocol registers no handler footprints: every handler pair is conservatively "
         "dependent and partial-order reduction stays off"});
    res.relation.seal();
    return res;
  }

  // Deduplicate IN01 across nodes: symmetric protocols repeat the same rule
  // table on every node.
  std::map<std::string, std::pair<NodeId, std::uint32_t>> in01;  // text -> (first node, extra)

  std::set<NodeId> described;
  for (const NodeFootprints& nf : footprints->nodes) {
    if (nf.node >= num_nodes) continue;
    if (!nf.complete) continue;
    described.insert(nf.node);

    std::map<std::uint64_t, KeyAgg> keys;
    for (const RuleFootprint& r : nf.rules) {
      KeyAgg& agg = keys[event_key(r.is_message, r.key)];
      agg.is_message = r.is_message;
      agg.key = r.key;
      if (agg.label.empty()) agg.label = r.label.empty() ? "?" : r.label;
      // A rule declaring nothing at all is a null handler (e.g. a message
      // type with no row at this node — a guaranteed no-op delivery); it
      // joins the table flavor with empty guard/goto sets, disjoint from
      // everything.
      const bool null_rule = r.guard_states.empty() && r.reads.empty() && r.writes.empty() &&
                             !r.sends && !r.asserts;
      if (!r.guard_states.empty() || null_rule) {
        agg.any_table = true;
        agg.guards.insert(r.guard_states.begin(), r.guard_states.end());
        agg.gotos.insert(r.goto_states.begin(), r.goto_states.end());
      } else {
        agg.any_field = true;
        agg.reads.insert(r.reads.begin(), r.reads.end());
        for (const FieldAccess& w : r.writes) {
          auto [it, inserted] = agg.writes.emplace(w.field, w.merge);
          if (!inserted && it->second != w.merge) it->second = MergeKind::kNone;
        }
      }
      agg.asserts = agg.asserts || r.asserts;
    }

    std::set<std::pair<std::uint64_t, std::uint64_t>> node_pairs;
    for (auto ia = keys.begin(); ia != keys.end(); ++ia) {
      for (auto ib = std::next(ia); ib != keys.end(); ++ib) {
        switch (classify(ia->second, ib->second)) {
          case Verdict::kIndependent:
            res.relation.add(nf.node, ia->first, ib->first);
            node_pairs.emplace(ia->first, ib->first);
            ++res.derived_pairs;
            break;
          case Verdict::kUnclassifiableAssert: {
            ++res.unclassifiable;
            const std::string msg =
                "rules '" + ia->second.label + "' and '" + ib->second.label +
                "' have disjoint footprints but carry assertion inputs outside their read "
                "sets; the pair stays dependent (drop the assert or fold its inputs into "
                "`reads` to unlock the reduction)";
            auto [it, inserted] = in01.emplace(msg, std::make_pair(nf.node, 0u));
            if (!inserted) ++it->second.second;
            break;
          }
          case Verdict::kDependent:
            break;
        }
      }
    }

    for (const DeclaredPair& dp : nf.declared_independent) {
      const std::uint64_t ka = event_key(dp.a_is_message, dp.a_key);
      const std::uint64_t kb = event_key(dp.b_is_message, dp.b_key);
      if (node_pairs.count(std::minmax(ka, kb))) continue;  // already derived
      bool statically_confirmed = false;
      auto fa = keys.find(ka);
      auto fb = keys.find(kb);
      if (ka != kb && fa != keys.end() && fb != keys.end())
        statically_confirmed = classify(fa->second, fb->second) == Verdict::kIndependent;
      res.relation.add(nf.node, ka, kb);
      ++res.declared_pairs;
      if (!statically_confirmed) {
        res.diagnostics.push_back(
            {"IN02", file, 1, 1,
             "declared-independent pair (" + (fa != keys.end() ? fa->second.label : "?") + ", " +
                 (fb != keys.end() ? fb->second.label : "?") + ") on node " +
                 std::to_string(nf.node) + " cannot be confirmed statically (" + dp.why +
                 "); it is admitted on the author's word and remains subject to the runtime "
                 "commutation auditor"});
      }
    }
  }

  for (NodeId n = 0; n < num_nodes; ++n) {
    if (described.count(n)) continue;
    ++res.nodes_without_metadata;
    res.diagnostics.push_back(
        {"IN03", file, 1, 1,
         "node " + std::to_string(n) +
             " has no complete handler footprints: all its handler pairs are conservatively "
             "dependent"});
  }

  for (const auto& [msg, site] : in01) {
    std::string full = msg + " (node " + std::to_string(site.first) +
                       (site.second > 0 ? " and " + std::to_string(site.second) + " more" : "") +
                       ")";
    res.diagnostics.push_back({"IN01", file, 1, 1, std::move(full)});
  }

  std::sort(res.diagnostics.begin(), res.diagnostics.end(),
            [](const analyze::Diagnostic& a, const analyze::Diagnostic& b) {
              return std::tie(a.rule, a.message) < std::tie(b.rule, b.message);
            });
  res.relation.seal();
  return res;
}

}  // namespace lmc::indep
