// lmc_indep CLI: static handler-independence analysis (DESIGN.md §14).
//
//   lmc_indep [--json|--sarif] [--nodes N] [--list-rules] <spec.lmc | paxos>
//
// Loads a .lmc protocol (or instantiates a built-in by name), extracts the
// registered per-rule footprints, derives the conservative independence
// relation, and reports the IN01–IN03 near-miss diagnostics gcc-style (or
// as JSON / SARIF via the emitter shared with lmc_lint). Exit status:
// 0 = analysis ran and every checkable pair classified, 1 = conservative
// fallbacks reported (IN diagnostics fired), 2 = usage or load error.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "analyze/independence/independence.hpp"
#include "analyze/sarif.hpp"
#include "dsl/interp.hpp"
#include "dsl/loader.hpp"
#include "obs/json.hpp"
#include "protocols/paxos.hpp"

namespace {

using namespace lmc;

int usage() {
  std::fprintf(stderr,
               "usage: lmc_indep [--json|--sarif] [--nodes N] [--list-rules] <spec.lmc | paxos>\n"
               "  --json        emit one JSON object instead of gcc-style lines\n"
               "  --sarif       emit a SARIF 2.1.0 log instead of gcc-style lines\n"
               "  --nodes N     node count for built-in protocols (default 3)\n"
               "  --list-rules  print the IN rule table and exit\n");
  return 2;
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() && s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::string relation_json(const indep::AnalysisResult& res, const std::string& source) {
  std::string s = "{\"schema\":\"lmc-indep/1\"";
  s += ",\"source\":" + obs::json_quote(source);
  s += ",\"relation_pairs\":" + std::to_string(res.relation.size());
  s += ",\"relation_digest\":\"" + std::to_string(res.relation.digest()) + "\"";
  s += ",\"derived_pairs\":" + std::to_string(res.derived_pairs);
  s += ",\"declared_pairs\":" + std::to_string(res.declared_pairs);
  s += ",\"unclassifiable\":" + std::to_string(res.unclassifiable);
  s += ",\"nodes_without_metadata\":" + std::to_string(res.nodes_without_metadata);
  s += ",\"diagnostics\":[";
  for (std::size_t i = 0; i < res.diagnostics.size(); ++i) {
    const analyze::Diagnostic& d = res.diagnostics[i];
    if (i > 0) s += ",";
    s += "{\"rule\":" + obs::json_quote(d.rule);
    s += ",\"file\":" + obs::json_quote(d.file);
    s += ",\"line\":" + std::to_string(d.line);
    s += ",\"col\":" + std::to_string(d.col);
    s += ",\"message\":" + obs::json_quote(d.message) + "}";
  }
  s += "]}";
  return s;
}

/// Human-readable pair listing: re-derive each node's pair verdicts from the
/// sealed relation so the operator sees WHICH handler pairs commute, by
/// label, not just a count.
void print_pairs(const ProtocolFootprints& fp, const indep::IndependenceRelation& rel) {
  for (const NodeFootprints& nf : fp.nodes) {
    std::string lines;
    for (std::size_t i = 0; i < nf.rules.size(); ++i) {
      for (std::size_t j = i + 1; j < nf.rules.size(); ++j) {
        const RuleFootprint& a = nf.rules[i];
        const RuleFootprint& b = nf.rules[j];
        if (rel.independent(nf.node, indep::event_key(a.is_message, a.key),
                            indep::event_key(b.is_message, b.key)))
          lines += "    " + a.label + " || " + b.label + "\n";
      }
    }
    if (!lines.empty()) {
      std::printf("  node %u independent pairs:\n%s", nf.node, lines.c_str());
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool sarif = false;
  std::uint32_t nodes = 3;
  std::vector<std::string> targets;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--sarif") {
      sarif = true;
    } else if (arg == "--nodes") {
      if (i + 1 >= argc) return usage();
      nodes = static_cast<std::uint32_t>(std::strtoul(argv[++i], nullptr, 10));
      if (nodes == 0) return usage();
    } else if (arg == "--list-rules") {
      for (const auto& r : indep::indep_rules()) std::printf("%s  %s\n", r.id, r.summary);
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "lmc_indep: unknown option '%s'\n", arg.c_str());
      return usage();
    } else {
      targets.push_back(arg);
    }
  }
  if (targets.size() != 1) return usage();
  const std::string& target = targets[0];

  SystemConfig cfg;
  dsl::CompiledProtocol compiled;  // keeps a loaded spec's cfg alive
  try {
    if (ends_with(target, ".lmc")) {
      dsl::LoadResult lr = dsl::load_file(target);
      if (!lr.ok()) {
        std::fprintf(stderr, "%s", lr.diags.to_string().c_str());
        return 2;
      }
      compiled = dsl::instantiate(*lr.spec);
      cfg = compiled.cfg;
    } else if (target == "paxos") {
      paxos::DriverConfig driver;
      driver.proposers = {0};
      cfg = paxos::make_config(nodes, paxos::CoreOptions{}, driver);
    } else {
      std::fprintf(stderr, "lmc_indep: unknown target '%s' (expected a .lmc file or 'paxos')\n",
                   target.c_str());
      return 2;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "lmc_indep: %s\n", e.what());
    return 2;
  }

  const indep::AnalysisResult res =
      indep::analyze_independence(cfg.footprints.get(), cfg.num_nodes, target);

  if (sarif) {
    analyze::LintResult lint;
    lint.diagnostics = res.diagnostics;
    std::fputs(analyze::to_sarif(lint, "lmc_indep", indep::indep_rules()).c_str(), stdout);
    std::fputc('\n', stdout);
  } else if (json) {
    std::fputs(relation_json(res, target).c_str(), stdout);
    std::fputc('\n', stdout);
  } else {
    for (const analyze::Diagnostic& d : res.diagnostics)
      std::printf("%s:%u:%u: warning: %s [%s]\n", d.file.c_str(), d.line, d.col,
                  d.message.c_str(), d.rule.c_str());
    std::printf("lmc_indep: %s: %llu independent pair(s) (%llu derived, %llu declared), "
                "%llu unclassifiable, digest %016llx\n",
                target.c_str(), static_cast<unsigned long long>(res.relation.size()),
                static_cast<unsigned long long>(res.derived_pairs),
                static_cast<unsigned long long>(res.declared_pairs),
                static_cast<unsigned long long>(res.unclassifiable),
                static_cast<unsigned long long>(res.relation.digest()));
    if (cfg.footprints != nullptr) print_pairs(*cfg.footprints, res.relation);
  }
  return res.diagnostics.empty() ? 0 : 1;
}
