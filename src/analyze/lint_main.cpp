// lmc_lint CLI: model-validity lint over protocol sources.
//
//   lmc_lint [--json|--sarif] [--list-rules] <file-or-dir>...
//
// Directories are scanned recursively for .cpp/.cc/.hpp/.h. Exit status:
// 0 = clean, 1 = violations found, 2 = usage or I/O error.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "analyze/lint.hpp"
#include "analyze/sarif.hpp"

namespace fs = std::filesystem;

namespace {

bool is_source_file(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".cc" || ext == ".hpp" || ext == ".h";
}

int usage() {
  std::fprintf(stderr,
               "usage: lmc_lint [--json|--sarif] [--list-rules] <file-or-dir>...\n"
               "  --json        emit one JSON object instead of gcc-style lines\n"
               "  --sarif       emit a SARIF 2.1.0 log instead of gcc-style lines\n"
               "  --list-rules  print the rule table and exit\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool sarif = false;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--sarif") {
      sarif = true;
    } else if (arg == "--list-rules") {
      for (const auto& r : lmc::analyze::all_rules())
        std::printf("%s  %s\n", r.id, r.summary);
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "lmc_lint: unknown option '%s'\n", arg.c_str());
      return usage();
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) return usage();

  lmc::analyze::Linter linter;
  std::vector<std::string> files;
  for (const std::string& p : paths) {
    std::error_code ec;
    if (fs::is_directory(p, ec)) {
      for (auto it = fs::recursive_directory_iterator(p, ec);
           !ec && it != fs::recursive_directory_iterator(); ++it)
        if (it->is_regular_file() && is_source_file(it->path()))
          files.push_back(it->path().string());
    } else if (fs::is_regular_file(p, ec)) {
      files.push_back(p);
    } else {
      std::fprintf(stderr, "lmc_lint: cannot read '%s'\n", p.c_str());
      return 2;
    }
  }
  std::sort(files.begin(), files.end());
  for (const std::string& f : files) {
    if (!linter.add_file(f)) {
      std::fprintf(stderr, "lmc_lint: cannot read '%s'\n", f.c_str());
      return 2;
    }
  }

  const lmc::analyze::LintResult res = linter.run();
  if (sarif) {
    std::fputs(lmc::analyze::to_sarif(res, "lmc_lint", lmc::analyze::all_rules()).c_str(),
               stdout);
    std::fputc('\n', stdout);
  } else if (json) {
    std::fputs(lmc::analyze::to_json(res).c_str(), stdout);
    std::fputc('\n', stdout);
  } else {
    std::fputs(lmc::analyze::to_gcc(res).c_str(), stdout);
    std::fprintf(stderr, "lmc_lint: %u file(s), %u machine class(es), %zu violation(s), %u suppressed\n",
                 res.files_scanned, res.machine_classes, res.diagnostics.size(), res.suppressed);
  }
  return res.diagnostics.empty() ? 0 : 1;
}
