// Comment/string-stripping C++ tokenizer for the model-validity linter.
//
// This is NOT a compiler front end: it produces a flat token stream with
// source positions, plus the comment list (lint-suppression directives live
// in comments). That is enough for lmc_lint's structural heuristics — class
// boundaries, member declarations, handler bodies — which are documented as
// heuristics in DESIGN.md §9. Preprocessor directives are skipped whole
// (including line continuations); string/char literals survive as single
// tokens with their quoted text so rules can inspect format strings.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace lmc::analyze {

enum class TokKind : std::uint8_t {
  Identifier,  ///< identifiers and keywords (no keyword table needed)
  Number,
  String,  ///< "..." including raw strings; text keeps the quotes
  Char,    ///< '...'
  Punct,   ///< operators/punctuation, longest-match multi-char
};

struct Token {
  TokKind kind = TokKind::Punct;
  std::string text;
  std::uint32_t line = 0;  ///< 1-based
  std::uint32_t col = 0;   ///< 1-based
};

struct Comment {
  std::string text;        ///< without the // or /* */ markers
  std::uint32_t line = 0;  ///< line the comment starts on
};

struct TokenizedFile {
  std::vector<Token> tokens;
  std::vector<Comment> comments;
};

/// Tokenize `source`. Never throws on malformed input: an unterminated
/// string/comment simply ends at EOF (the linter must degrade gracefully on
/// code it cannot parse).
TokenizedFile tokenize(std::string_view source);

}  // namespace lmc::analyze
