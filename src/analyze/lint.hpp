// lmc_lint: model-validity static analysis for hand-written protocols.
//
// LMC is sound/complete only if every handler is a deterministic, atomic
// function of (serialized state, event). The paper inherits that guarantee
// from the Mace compiler; this reproduction's hand-rolled StateMachine
// interface does not enforce it (DESIGN.md §3), so a handler that reads
// rand(), keeps hidden non-serialized fields, or emits messages in
// unordered_map iteration order silently breaks state-hash identity, dedup
// and soundness verification. This linter discharges those obligations
// statically, per component (token-level heuristics, documented in
// DESIGN.md §9); the dynamic ModelValidityAuditor (runtime/audit.hpp)
// catches at runtime what tokens cannot prove.
//
// Scope: classes that derive from StateMachine or declare both a
// `handle_message` and a `serialize` method ("machine classes"). Handler
// scope is handle_message / handle_internal / enabled_internal_events plus
// every same-class method transitively called from them. The SR rules need
// the class's field declarations, so lint the header together with the
// .cpp (directory scans do this automatically).
//
// Rules (stable IDs; each has a firing fixture in tests/fixtures/lint/):
//   ND01 banned-entropy-call        rand()/time()/getenv()/random_device/...
//   ND02 pointer-identity           hashing or printing `this`
//   ST01 static-local-state         mutable `static` local in a handler
//   ST02 mutable-global-state       handler touches a mutable global
//   IT01 unordered-iteration        iterating an unordered_{map,set} member
//                                   in a handler or in serialize()
//   IO01 direct-io                  stdio/iostream/filesystem from a handler
//   TH01 threading-primitive        std::thread/mutex/atomic/... in a handler
//   SR01 unserialized-mutated-field field mutated in a handler but absent
//                                   from serialize()
//   SR02 serialize-asymmetry        field in serialize() xor deserialize()
//
// The IN01–IN03 rules share this namespace but fire from the footprint-based
// independence checker (analyze/independence/, CLI: lmc_indep), not from the
// token scan:
//   IN01 indep-unclassifiable-pair  disjoint footprints left dependent
//                                   because of out-of-read-set assert inputs
//   IN02 indep-declared-unverifiable DeclaredPair admitted on the author's
//                                   word (runtime-audited), not confirmed
//   IN03 indep-missing-metadata     node without complete footprints
//
// Suppression: a comment `// lmc-lint-disable(ID)` (or `(ID1,ID2)`, or
// `(*)`) on the diagnosed line or the line above; `lmc-lint-disable-file(ID)`
// anywhere in the file suppresses for the whole file. Suppressions are
// counted, never silent.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace lmc::analyze {

struct Diagnostic {
  std::string rule;  ///< stable rule ID, e.g. "ND01"
  std::string file;
  std::uint32_t line = 0;
  std::uint32_t col = 0;
  std::string message;
};

struct RuleInfo {
  const char* id;
  const char* summary;
};

/// The full rule table (for --list-rules and the DESIGN.md §9 table).
const std::vector<RuleInfo>& all_rules();

struct LintResult {
  std::vector<Diagnostic> diagnostics;  ///< sorted by (file, line, col, rule)
  std::uint32_t files_scanned = 0;
  std::uint32_t machine_classes = 0;  ///< classes the handler rules applied to
  std::uint32_t suppressed = 0;       ///< diagnostics silenced by directives
};

class Linter {
 public:
  /// Add a source buffer under a display path (tests use virtual paths).
  void add_source(std::string path, std::string content);
  /// Read `path` from disk; returns false (and records nothing) on failure.
  bool add_file(const std::string& path);

  /// Analyze everything added so far. All files form one model: class
  /// declarations and out-of-class method definitions are merged by class
  /// name across files.
  LintResult run() const;

 private:
  struct Source {
    std::string path;
    std::string content;
  };
  std::vector<Source> sources_;
};

/// gcc-style rendering: "file:line:col: warning: message [ID]\n" per entry.
std::string to_gcc(const LintResult& r);
/// Machine-readable rendering (one JSON object; diagnostics as an array).
std::string to_json(const LintResult& r);

}  // namespace lmc::analyze
