#include "analyze/lint.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "analyze/tokenizer.hpp"

namespace lmc::analyze {

namespace {

// --- rule table -------------------------------------------------------------

const std::vector<RuleInfo> kRules = {
    {"ND01", "banned entropy source (rand/time/getenv/random_device/...) in a handler"},
    {"ND02", "pointer identity (`this`) hashed, cast to integer or printed in a handler"},
    {"ST01", "mutable `static` local variable inside a handler"},
    {"ST02", "mutable namespace-scope variable referenced from a handler"},
    {"IT01", "iteration over an unordered container member in a handler or serialize()"},
    {"IO01", "direct I/O (stdio/iostream/filesystem) from a handler"},
    {"TH01", "threading/synchronization primitive in a handler"},
    {"SR01", "field mutated in a handler but missing from serialize()"},
    {"SR02", "field referenced in serialize() xor deserialize()"},
    // The IN rules fire from the footprint-based independence checker
    // (analyze/independence/, surfaced by lmc_indep), never from the token
    // scan — they are listed here so the shared emitters and --list-rules
    // present one stable rule namespace.
    {"IN01", "pair with disjoint footprints kept dependent: assertion inputs outside the read set"},
    {"IN02", "declared-independent pair the static checker cannot confirm (admitted, audited)"},
    {"IN03", "node without complete handler footprints: all its pairs conservatively dependent"},
};

// Entropy calls (fire when followed by '('; `std::time(...)` included).
const std::unordered_set<std::string> kEntropyCalls = {
    "rand",         "srand",    "random",       "drand48", "lrand48",
    "mrand48",      "rand_r",   "time",         "clock",   "gettimeofday",
    "clock_gettime", "getenv",  "getpid",       "gethostname",
};
// Entropy types/objects (fire on any use).
const std::unordered_set<std::string> kEntropyTypes = {
    "random_device", "system_clock", "steady_clock", "high_resolution_clock",
};
// I/O calls (fire when followed by '(').
const std::unordered_set<std::string> kIoCalls = {
    "printf", "fprintf", "puts",   "fputs",  "fputc",  "fgets",  "fopen",
    "fclose", "fread",   "fwrite", "fscanf", "scanf",  "getchar", "system",
    "popen",  "remove",  "rename", "fflush", "perror",
};
// I/O objects/types (fire on any use).
const std::unordered_set<std::string> kIoTypes = {
    "cout", "cerr", "clog", "cin", "ifstream", "ofstream", "fstream", "filesystem",
};
// Threading primitives (fire on any use).
const std::unordered_set<std::string> kThreadTypes = {
    "thread",        "jthread",       "async",       "mutex",
    "recursive_mutex", "timed_mutex", "shared_mutex", "condition_variable",
    "condition_variable_any", "atomic", "atomic_flag", "future",
    "promise",       "packaged_task", "lock_guard",  "unique_lock",
    "scoped_lock",   "shared_lock",   "sleep_for",   "sleep_until",
};
// Member calls that mutate the object they are called on.
const std::unordered_set<std::string> kMutatingMethods = {
    "insert", "erase",   "clear",  "push_back", "pop_back",     "emplace",
    "emplace_back", "emplace_front", "push_front", "pop_front", "assign",
    "resize", "reset",   "merge",  "swap",      "insert_or_assign",
};
const std::unordered_set<std::string> kAssignOps = {
    "=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>=",
};

// --- structural model -------------------------------------------------------

struct Method {
  std::string name;
  std::size_t file = 0;  ///< index into the per-file token streams
  std::size_t body_begin = 0, body_end = 0;  ///< token range; begin==end: no body
  std::uint32_t line = 0, col = 0;
};

struct Field {
  std::string name;
  std::size_t file = 0;
  std::uint32_t line = 0, col = 0;
  bool is_unordered = false;
  bool is_mutable_data = true;  ///< false for static/const/constexpr members
};

struct ClassModel {
  std::string name;
  bool derives_state_machine = false;
  std::vector<Field> fields;
  std::vector<Method> methods;
};

struct GlobalVar {
  std::string name;
  std::size_t file = 0;
  std::uint32_t line = 0;
};

struct FileModel {
  std::string path;
  TokenizedFile toks;
  // line -> suppressed rule ids ("*" = all); file-wide under line 0.
  std::map<std::uint32_t, std::set<std::string>> suppress;
};

struct Model {
  std::vector<FileModel> files;
  std::map<std::string, ClassModel> classes;  ///< merged across files by name
  std::vector<GlobalVar> globals;             ///< mutable namespace-scope vars
};

bool is_ident(const Token& t) { return t.kind == TokKind::Identifier; }
bool is_punct(const Token& t, const char* s) {
  return t.kind == TokKind::Punct && t.text == s;
}

/// Token-stream parser for ONE file; appends into the shared model.
class FileParser {
 public:
  FileParser(Model& model, std::size_t file_idx)
      : model_(model), file_(file_idx), t_(model.files[file_idx].toks.tokens) {}

  void parse() { parse_scope(0, t_.size(), /*in_class=*/nullptr); }

 private:
  Model& model_;
  std::size_t file_;
  const std::vector<Token>& t_;

  /// Index just past the brace/paren/bracket group opening at `i`.
  std::size_t match_group(std::size_t i) const {
    const std::string& open = t_[i].text;
    const char* close = open == "{" ? "}" : open == "(" ? ")" : "]";
    int depth = 0;
    for (; i < t_.size(); ++i) {
      if (t_[i].kind != TokKind::Punct) continue;
      if (t_[i].text == open) ++depth;
      else if (t_[i].text == close && --depth == 0) return i + 1;
    }
    return t_.size();
  }

  /// Skip a constructor member-initializer list starting at the `:` token.
  /// Grammar handled: `: name(<args>)` or `: name{<args>}`, comma-separated.
  std::size_t skip_init_list(std::size_t i) const {
    ++i;  // ':'
    while (i < t_.size()) {
      while (i < t_.size() && (is_ident(t_[i]) || is_punct(t_[i], "::"))) ++i;
      if (i < t_.size() && (is_punct(t_[i], "(") || is_punct(t_[i], "{"))) i = match_group(i);
      if (i < t_.size() && is_punct(t_[i], ",")) {
        ++i;
        continue;
      }
      break;
    }
    return i;
  }

  /// Parse declarations in [i, end): file/namespace scope when in_class is
  /// null, else the body of *in_class.
  void parse_scope(std::size_t i, std::size_t end, ClassModel* in_class) {
    while (i < end) {
      const Token& tok = t_[i];
      if (is_ident(tok) && tok.text == "namespace" && in_class == nullptr) {
        std::size_t j = i + 1;
        while (j < end && (is_ident(t_[j]) || is_punct(t_[j], "::"))) ++j;
        if (j < end && is_punct(t_[j], "{")) {
          parse_scope(j + 1, match_group(j) - 1, nullptr);
          i = match_group(j);
          continue;
        }
        i = j + 1;  // `using namespace x;` handled by statement scan below
        continue;
      }
      if (is_ident(tok) && tok.text == "enum") {
        // enum [class] [name] [: base] { ... } ;  — skip entirely.
        std::size_t j = i + 1;
        while (j < end && !is_punct(t_[j], "{") && !is_punct(t_[j], ";")) ++j;
        i = (j < end && is_punct(t_[j], "{")) ? match_group(j) : j + 1;
        continue;
      }
      if (is_ident(tok) && (tok.text == "class" || tok.text == "struct") && i + 1 < end &&
          is_ident(t_[i + 1])) {
        i = parse_class(i, end);
        continue;
      }
      if (is_ident(tok) && (tok.text == "using" || tok.text == "typedef" ||
                            tok.text == "friend" || tok.text == "template")) {
        // `template` introduces the next declaration; its <...> contains no
        // braces, so skipping to the next `;`/`{` boundary via the regular
        // statement scan is wrong only for `template <...>` itself — skip
        // the angle group conservatively by scanning to its matching '>'.
        if (tok.text == "template" && i + 1 < end && is_punct(t_[i + 1], "<")) {
          int depth = 0;
          std::size_t j = i + 1;
          for (; j < end; ++j) {
            if (is_punct(t_[j], "<")) ++depth;
            else if (is_punct(t_[j], ">") && --depth == 0) break;
            else if (is_punct(t_[j], ">>") && (depth -= 2) <= 0) break;
          }
          i = j + 1;
          continue;
        }
        while (i < end && !is_punct(t_[i], ";")) ++i;
        ++i;
        continue;
      }
      if (is_ident(tok) && (tok.text == "public" || tok.text == "private" ||
                            tok.text == "protected") &&
          i + 1 < end && is_punct(t_[i + 1], ":")) {
        i += 2;
        continue;
      }
      if (tok.kind == TokKind::Punct) {
        if (tok.text == "{") {  // stray block (e.g. extern "C")
          parse_scope(i + 1, match_group(i) - 1, in_class);
          i = match_group(i);
          continue;
        }
        ++i;
        continue;
      }
      i = parse_declaration(i, end, in_class);
    }
  }

  std::size_t parse_class(std::size_t i, std::size_t end) {
    const std::string name = t_[i + 1].text;
    std::size_t j = i + 2;
    std::vector<std::string> bases;
    bool saw_colon = false;
    while (j < end && !is_punct(t_[j], "{") && !is_punct(t_[j], ";")) {
      if (is_punct(t_[j], ":")) saw_colon = true;
      else if (saw_colon && is_ident(t_[j])) bases.push_back(t_[j].text);
      ++j;
    }
    if (j >= end || is_punct(t_[j], ";")) return j + 1;  // forward declaration
    ClassModel& cls = model_.classes[name];
    cls.name = name;
    for (const std::string& b : bases)
      if (b == "StateMachine") cls.derives_state_machine = true;
    parse_scope(j + 1, match_group(j) - 1, &cls);
    std::size_t after = match_group(j);
    if (after < end && is_punct(t_[after], ";")) ++after;
    return after;
  }

  /// A method definition/declaration or a field/variable, starting at `i`.
  std::size_t parse_declaration(std::size_t i, std::size_t end, ClassModel* in_class) {
    // Scan the statement head for the first '(' that follows an identifier
    // (function), or a terminating ';' / top-level '=' (variable).
    std::size_t j = i;
    std::size_t paren = 0;       // '(' position of a function-like declarator
    std::size_t eq = 0;          // first top-level '='
    bool is_static = false, is_const = false, is_unordered = false;
    std::string last_ident;
    std::size_t last_ident_pos = 0;
    while (j < end) {
      const Token& tk = t_[j];
      if (is_punct(tk, ";")) break;
      if (is_punct(tk, "{")) break;
      if (is_punct(tk, "=") && eq == 0) {
        eq = j;
        break;
      }
      if (is_punct(tk, "(")) {
        if (!last_ident.empty()) {
          paren = j;
          break;
        }
        j = match_group(j);  // e.g. attribute-like noise — skip
        continue;
      }
      if (is_punct(tk, "<")) {  // template argument list in the type
        int depth = 0;
        for (; j < end; ++j) {
          if (is_punct(t_[j], "<")) ++depth;
          else if (is_punct(t_[j], ">") && --depth == 0) break;
          else if (is_punct(t_[j], ">>") && (depth -= 2) <= 0) break;
        }
        ++j;
        continue;
      }
      if (is_ident(tk)) {
        if (tk.text == "static") is_static = true;
        if (tk.text == "const" || tk.text == "constexpr") is_const = true;
        if (tk.text.rfind("unordered_", 0) == 0) is_unordered = true;
        if (tk.text == "operator") {  // operator overload: name up to '('
          last_ident = "operator";
          last_ident_pos = j;
          while (j < end && !is_punct(t_[j], "(")) ++j;
          continue;
        }
        last_ident = tk.text;
        last_ident_pos = j;
      }
      ++j;
    }

    if (paren != 0) return finish_function(paren, end, in_class, last_ident, last_ident_pos);

    // Variable / field declaration: name is the last identifier before the
    // boundary ('=', '{', or ';').
    std::size_t stmt_end = eq != 0 ? eq : j;
    while (stmt_end < end && !is_punct(t_[stmt_end], ";")) {
      if (is_punct(t_[stmt_end], "{") || is_punct(t_[stmt_end], "(")) {
        stmt_end = match_group(stmt_end);
        continue;
      }
      ++stmt_end;
    }
    if (!last_ident.empty()) {
      if (in_class != nullptr) {
        Field f;
        f.name = last_ident;
        f.file = file_;
        f.line = t_[last_ident_pos].line;
        f.col = t_[last_ident_pos].col;
        f.is_unordered = is_unordered;
        f.is_mutable_data = !is_static && !is_const;
        in_class->fields.push_back(std::move(f));
      } else if (!is_const && t_[i].text != "extern" && t_[i].text != "return") {
        model_.globals.push_back({last_ident, file_, t_[last_ident_pos].line});
      }
    }
    return stmt_end + 1;
  }

  std::size_t finish_function(std::size_t paren, std::size_t end, ClassModel* in_class,
                              const std::string& name, std::size_t name_pos) {
    // Out-of-class definition `Cls::name(...)`: attach to Cls instead.
    ClassModel* owner = in_class;
    std::string method_name = name;
    if (owner == nullptr && name_pos >= 2 && is_punct(t_[name_pos - 1], "::") &&
        is_ident(t_[name_pos - 2])) {
      auto it = model_.classes.find(t_[name_pos - 2].text);
      if (it != model_.classes.end()) owner = &it->second;
    }
    std::size_t j = match_group(paren);
    // Trailer: const / noexcept(...) / override / final / -> type / = 0|default.
    while (j < end) {
      if (is_ident(t_[j]) &&
          (t_[j].text == "const" || t_[j].text == "noexcept" || t_[j].text == "override" ||
           t_[j].text == "final" || t_[j].text == "try"))
        ++j;
      else if (is_punct(t_[j], "->")) ++j;
      else if (is_ident(t_[j]) || is_punct(t_[j], "::") || is_punct(t_[j], "*") ||
               is_punct(t_[j], "&"))
        ++j;  // trailing return type tokens
      else if (is_punct(t_[j], "(")) j = match_group(j);  // noexcept(expr)
      else break;
    }
    std::size_t body_begin = 0, body_end = 0;
    if (j < end && is_punct(t_[j], ":")) j = skip_init_list(j);
    if (j < end && is_punct(t_[j], "{")) {
      body_begin = j + 1;
      body_end = match_group(j) - 1;
      j = match_group(j);
    } else if (j < end && is_punct(t_[j], "=")) {  // = 0; / = default; / = delete;
      while (j < end && !is_punct(t_[j], ";")) ++j;
      ++j;
    } else {
      while (j < end && !is_punct(t_[j], ";")) ++j;
      ++j;
    }
    if (owner != nullptr && !method_name.empty()) {
      Method m;
      m.name = method_name;
      m.file = file_;
      m.body_begin = body_begin;
      m.body_end = body_end;
      m.line = t_[name_pos].line;
      m.col = t_[name_pos].col;
      owner->methods.push_back(std::move(m));
    }
    return j;
  }
};

// --- suppression directives -------------------------------------------------

void collect_suppressions(FileModel& f) {
  for (const Comment& c : f.toks.comments) {
    for (const char* marker : {"lmc-lint-disable-file(", "lmc-lint-disable("}) {
      std::size_t pos = c.text.find(marker);
      if (pos == std::string::npos) continue;
      const bool file_wide = std::string(marker).find("file") != std::string::npos;
      pos += std::string(marker).size();
      std::size_t close = c.text.find(')', pos);
      if (close == std::string::npos) continue;
      std::string ids = c.text.substr(pos, close - pos);
      std::set<std::string>& dst = f.suppress[file_wide ? 0 : c.line];
      std::string cur;
      for (char ch : ids + ",") {
        if (ch == ',' ) {
          if (!cur.empty()) dst.insert(cur);
          cur.clear();
        } else if (!std::isspace(static_cast<unsigned char>(ch))) {
          cur += ch;
        }
      }
      break;  // the -file marker contains the plain marker; do not double-add
    }
  }
}

// --- rule engine ------------------------------------------------------------

class RuleEngine {
 public:
  explicit RuleEngine(const Model& m) : m_(m) {}

  LintResult run() {
    res_.files_scanned = static_cast<std::uint32_t>(m_.files.size());
    for (const auto& [name, cls] : m_.classes) {
      if (!is_machine(cls)) continue;
      ++res_.machine_classes;
      check_class(cls);
    }
    std::sort(res_.diagnostics.begin(), res_.diagnostics.end(),
              [](const Diagnostic& a, const Diagnostic& b) {
                return std::tie(a.file, a.line, a.col, a.rule) <
                       std::tie(b.file, b.line, b.col, b.rule);
              });
    return std::move(res_);
  }

 private:
  const Model& m_;
  LintResult res_;

  static bool is_machine(const ClassModel& c) {
    if (c.derives_state_machine) return true;
    bool has_handler = false, has_ser = false;
    for (const Method& me : c.methods) {
      if (me.name == "handle_message") has_handler = true;
      if (me.name == "serialize") has_ser = true;
    }
    return has_handler && has_ser;
  }

  void report(const std::string& rule, std::size_t file, std::uint32_t line, std::uint32_t col,
              std::string message) {
    const FileModel& f = m_.files[file];
    for (std::uint32_t l : {std::uint32_t{0}, line, line > 0 ? line - 1 : 0}) {
      auto it = f.suppress.find(l);
      if (it != f.suppress.end() && (it->second.count(rule) || it->second.count("*"))) {
        ++res_.suppressed;
        return;
      }
    }
    res_.diagnostics.push_back({rule, f.path, line, col, std::move(message)});
  }

  /// Methods transitively reachable from `roots` through same-class calls.
  std::vector<const Method*> reachable(const ClassModel& cls,
                                       const std::set<std::string>& roots) const {
    std::set<std::string> seen = roots;
    std::vector<std::string> work(roots.begin(), roots.end());
    std::unordered_map<std::string, bool> is_method;
    for (const Method& me : cls.methods) is_method[me.name] = true;
    while (!work.empty()) {
      const std::string cur = work.back();
      work.pop_back();
      for (const Method& me : cls.methods) {
        if (me.name != cur || me.body_begin == me.body_end) continue;
        const std::vector<Token>& t = m_.files[me.file].toks.tokens;
        for (std::size_t i = me.body_begin; i + 1 < me.body_end; ++i) {
          if (!is_ident(t[i]) || !is_punct(t[i + 1], "(")) continue;
          // A plain call `foo(...)` — member access `x.foo(...)` leaves the
          // class, so only unqualified names count.
          if (i > me.body_begin &&
              (is_punct(t[i - 1], ".") || is_punct(t[i - 1], "->") || is_punct(t[i - 1], "::")))
            continue;
          if (is_method.count(t[i].text) && !seen.count(t[i].text)) {
            seen.insert(t[i].text);
            work.push_back(t[i].text);
          }
        }
      }
    }
    std::vector<const Method*> out;
    for (const Method& me : cls.methods)
      if (seen.count(me.name) && me.body_begin != me.body_end) out.push_back(&me);
    return out;
  }

  void check_class(const ClassModel& cls) {
    const std::set<std::string> handler_roots = {"handle_message", "handle_internal",
                                                 "enabled_internal_events"};
    std::vector<const Method*> handlers = reachable(cls, handler_roots);
    std::vector<const Method*> ser = reachable(cls, {"serialize"});
    std::vector<const Method*> deser = reachable(cls, {"deserialize"});

    std::unordered_map<std::string, const Field*> fields;
    std::unordered_set<std::string> unordered_fields;
    for (const Field& f : cls.fields) {
      fields.emplace(f.name, &f);
      if (f.is_unordered) unordered_fields.insert(f.name);
    }

    std::unordered_set<std::string> global_names;
    for (const GlobalVar& g : m_.globals) global_names.insert(g.name);

    // Fields mutated anywhere in handler scope: name -> first mutation site.
    std::map<std::string, std::pair<const Method*, std::size_t>> mutated;

    for (const Method* me : handlers) {
      check_handler_body(cls, *me, unordered_fields, global_names, fields, mutated);
    }
    // IT01 also applies to serialization itself: iterating an unordered
    // member there makes the byte image — the state identity — order-
    // dependent.
    for (const Method* me : ser) check_unordered_iteration(cls, *me, unordered_fields, true);

    check_serialization(cls, ser, deser, fields, mutated);
  }

  void check_handler_body(const ClassModel& cls, const Method& me,
                          const std::unordered_set<std::string>& unordered_fields,
                          const std::unordered_set<std::string>& globals,
                          const std::unordered_map<std::string, const Field*>& fields,
                          std::map<std::string, std::pair<const Method*, std::size_t>>& mutated) {
    const std::vector<Token>& t = m_.files[me.file].toks.tokens;
    auto prev_is_member_access = [&](std::size_t i) {
      return i > me.body_begin && (is_punct(t[i - 1], ".") || is_punct(t[i - 1], "->"));
    };
    for (std::size_t i = me.body_begin; i < me.body_end; ++i) {
      const Token& tk = t[i];
      if (tk.kind == TokKind::String) {
        if (tk.text.find("%p") != std::string::npos)
          report("ND02", me.file, tk.line, tk.col,
                 "handler '" + cls.name + "::" + me.name +
                     "' formats a pointer (%p): addresses differ across runs and break "
                     "state-hash identity");
        continue;
      }
      if (!is_ident(tk)) continue;
      const bool call = i + 1 < me.body_end && is_punct(t[i + 1], "(");

      // ND01 — banned entropy sources.
      if (call && kEntropyCalls.count(tk.text) && !prev_is_member_access(i)) {
        report("ND01", me.file, tk.line, tk.col,
               "handler '" + cls.name + "::" + me.name + "' calls '" + tk.text +
                   "()': handlers must be deterministic functions of (state, event); carry "
                   "randomness as a serialized seed field instead");
      } else if (kEntropyTypes.count(tk.text)) {
        report("ND01", me.file, tk.line, tk.col,
               "handler '" + cls.name + "::" + me.name + "' uses 'std::" + tk.text +
                   "': a fresh entropy/time source breaks re-execution identity; carry a "
                   "serialized seed field instead");
      }

      // ND02 — pointer identity.
      if (tk.text == "this") {
        bool cast = false;
        for (std::size_t k = i > me.body_begin + 6 ? i - 6 : me.body_begin; k < i; ++k)
          if (is_ident(t[k]) && (t[k].text == "reinterpret_cast" || t[k].text == "uintptr_t" ||
                                 t[k].text == "intptr_t"))
            cast = true;
        if (cast || (i > me.body_begin && is_punct(t[i - 1], "<<")))
          report("ND02", me.file, tk.line, tk.col,
                 "handler '" + cls.name + "::" + me.name +
                     "' takes the numeric identity of 'this': object addresses are not stable "
                     "across executions");
      }

      // ST01 — mutable static local.
      if (tk.text == "static") {
        const bool immutable = i + 1 < me.body_end && is_ident(t[i + 1]) &&
                               (t[i + 1].text == "const" || t[i + 1].text == "constexpr");
        if (!immutable)
          report("ST01", me.file, tk.line, tk.col,
                 "handler '" + cls.name + "::" + me.name +
                     "' declares a mutable static local: state hidden from serialization "
                     "survives across executions and breaks determinism");
      }

      // ST02 — mutable namespace-scope variable.
      if (globals.count(tk.text) && !prev_is_member_access(i) &&
          !(i > me.body_begin && is_punct(t[i - 1], "::"))) {
        report("ST02", me.file, tk.line, tk.col,
               "handler '" + cls.name + "::" + me.name + "' touches mutable global '" + tk.text +
                   "': global state is invisible to serialization and shared across nodes");
      }

      // IO01 — direct I/O.
      if (call && kIoCalls.count(tk.text) && !prev_is_member_access(i)) {
        report("IO01", me.file, tk.line, tk.col,
               "handler '" + cls.name + "::" + me.name + "' performs direct I/O ('" + tk.text +
                   "'): handlers must be pure state transitions; I/O belongs in the live runner");
      } else if (kIoTypes.count(tk.text)) {
        report("IO01", me.file, tk.line, tk.col,
               "handler '" + cls.name + "::" + me.name + "' performs direct I/O ('" + tk.text +
                   "'): handlers must be pure state transitions; I/O belongs in the live runner");
      }

      // TH01 — threading.
      if (kThreadTypes.count(tk.text) || tk.text.rfind("pthread_", 0) == 0) {
        report("TH01", me.file, tk.line, tk.col,
               "handler '" + cls.name + "::" + me.name + "' uses threading primitive '" +
                   tk.text + "': handlers must be atomic; the checkers provide all concurrency");
      }

      // Field mutation tracking (for SR01).
      auto fit = fields.find(tk.text);
      if (fit != fields.end() && fit->second->is_mutable_data && !prev_is_member_access(i) &&
          !mutated.count(tk.text)) {
        bool mut = false;
        if (i + 1 < me.body_end) {
          const Token& nx = t[i + 1];
          if (nx.kind == TokKind::Punct) {
            if (kAssignOps.count(nx.text) || nx.text == "++" || nx.text == "--" ||
                nx.text == "[")
              mut = true;
            if ((nx.text == "." || nx.text == "->") && i + 3 < me.body_end &&
                is_ident(t[i + 2]) && kMutatingMethods.count(t[i + 2].text) &&
                is_punct(t[i + 3], "("))
              mut = true;
          }
        }
        if (i > me.body_begin && (is_punct(t[i - 1], "++") || is_punct(t[i - 1], "--")))
          mut = true;
        if (mut) mutated.emplace(tk.text, std::make_pair(&me, i));
      }
    }
    check_unordered_iteration(cls, me, unordered_fields, false);
  }

  void check_unordered_iteration(const ClassModel& cls, const Method& me,
                                 const std::unordered_set<std::string>& unordered_fields,
                                 bool in_serialize) {
    if (unordered_fields.empty()) return;
    const std::vector<Token>& t = m_.files[me.file].toks.tokens;
    auto fire = [&](const Token& at, const std::string& field) {
      report("IT01", me.file, at.line, at.col,
             in_serialize
                 ? "'" + cls.name + "::" + me.name + "' iterates unordered member '" + field +
                       "': serialization order depends on hash-table layout, so equal logical "
                       "states get different byte images; use an ordered container or sort"
                 : "handler '" + cls.name + "::" + me.name + "' iterates unordered member '" +
                       field +
                       "': emission/write order depends on hash-table layout and breaks "
                       "deterministic re-execution; use an ordered container or sort first");
    };
    for (std::size_t i = me.body_begin; i < me.body_end; ++i) {
      // field.begin( / field.cbegin(
      if (is_ident(t[i]) && unordered_fields.count(t[i].text) && i + 2 < me.body_end &&
          is_punct(t[i + 1], ".") && is_ident(t[i + 2]) &&
          (t[i + 2].text == "begin" || t[i + 2].text == "cbegin")) {
        fire(t[i], t[i].text);
        continue;
      }
      // for (... : field) — range-for over the member.
      if (is_ident(t[i]) && t[i].text == "for" && i + 1 < me.body_end &&
          is_punct(t[i + 1], "(")) {
        int depth = 0;
        bool after_colon = false;
        for (std::size_t j = i + 1; j < me.body_end; ++j) {
          if (is_punct(t[j], "(")) ++depth;
          else if (is_punct(t[j], ")")) {
            if (--depth == 0) break;
          } else if (depth == 1 && is_punct(t[j], ":")) {
            after_colon = true;
          } else if (after_colon && is_ident(t[j]) && unordered_fields.count(t[j].text)) {
            fire(t[i], t[j].text);
            break;
          }
        }
      }
    }
  }

  void check_serialization(
      const ClassModel& cls, const std::vector<const Method*>& ser,
      const std::vector<const Method*>& deser,
      const std::unordered_map<std::string, const Field*>& fields,
      const std::map<std::string, std::pair<const Method*, std::size_t>>& mutated) {
    if (ser.empty()) return;  // interface-only class (e.g. StateMachine itself)
    auto referenced = [&](const std::vector<const Method*>& methods) {
      std::set<std::string> out;
      for (const Method* me : methods) {
        const std::vector<Token>& t = m_.files[me->file].toks.tokens;
        for (std::size_t i = me->body_begin; i < me->body_end; ++i)
          if (is_ident(t[i]) && fields.count(t[i].text)) out.insert(t[i].text);
      }
      return out;
    };
    const std::set<std::string> in_ser = referenced(ser);
    const std::set<std::string> in_deser = referenced(deser);

    // SR01 — every field a handler mutates must be serialized, or the state
    // hash no longer identifies the state.
    for (const auto& [name, site] : mutated) {
      if (in_ser.count(name)) continue;
      const Method* me = site.first;
      const Token& at = m_.files[me->file].toks.tokens[site.second];
      report("SR01", me->file, at.line, at.col,
             "field '" + name + "' is mutated in handler '" + cls.name + "::" + me->name +
                 "' but never written by '" + cls.name +
                 "::serialize': two different logical states would share one byte image "
                 "(add it to serialize()/deserialize(), or suppress if it is derived state)");
    }

    // SR02 — serialize()/deserialize() must cover the same fields.
    if (deser.empty()) return;
    for (const std::string& name : in_ser) {
      if (in_deser.count(name)) continue;
      const Field* f = fields.at(name);
      report("SR02", f->file, f->line, f->col,
             "field '" + name + "' is written by '" + cls.name +
                 "::serialize' but never restored by '" + cls.name +
                 "::deserialize': a serialize/deserialize round-trip would not be the identity");
    }
    for (const std::string& name : in_deser) {
      if (in_ser.count(name)) continue;
      const Field* f = fields.at(name);
      report("SR02", f->file, f->line, f->col,
             "field '" + name + "' is restored by '" + cls.name +
                 "::deserialize' but never written by '" + cls.name +
                 "::serialize': a serialize/deserialize round-trip would not be the identity");
    }
  }
};

}  // namespace

// --- public API -------------------------------------------------------------

const std::vector<RuleInfo>& all_rules() { return kRules; }

void Linter::add_source(std::string path, std::string content) {
  sources_.push_back({std::move(path), std::move(content)});
}

bool Linter::add_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  std::string content;
  char buf[8192];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) content.append(buf, n);
  std::fclose(f);
  add_source(path, std::move(content));
  return true;
}

LintResult Linter::run() const {
  Model model;
  model.files.reserve(sources_.size());
  // Headers first: out-of-class method definitions in a .cpp can only attach
  // to a class whose declaration has already been parsed.
  std::vector<const Source*> ordered;
  for (const Source& s : sources_)
    if (s.path.size() > 2 && s.path.rfind(".h") != std::string::npos) ordered.push_back(&s);
  for (const Source& s : sources_) {
    bool is_header = false;
    for (const Source* h : ordered)
      if (h == &s) is_header = true;
    if (!is_header) ordered.push_back(&s);
  }
  for (const Source* s : ordered) {
    FileModel fm;
    fm.path = s->path;
    fm.toks = tokenize(s->content);
    collect_suppressions(fm);
    model.files.push_back(std::move(fm));
  }
  for (std::size_t i = 0; i < model.files.size(); ++i) FileParser(model, i).parse();
  return RuleEngine(model).run();
}

std::string to_gcc(const LintResult& r) {
  std::ostringstream os;
  for (const Diagnostic& d : r.diagnostics)
    os << d.file << ":" << d.line << ":" << d.col << ": warning: " << d.message << " [" << d.rule
       << "]\n";
  return std::move(os).str();
}

namespace {
void json_escape(std::ostringstream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}
}  // namespace

std::string to_json(const LintResult& r) {
  std::ostringstream os;
  os << "{\"files_scanned\":" << r.files_scanned
     << ",\"machine_classes\":" << r.machine_classes << ",\"suppressed\":" << r.suppressed
     << ",\"rule_counts\":{";
  // Per-rule firing counts over the whole rule table (zeroes included), so
  // consumers see which rules were checked, not just which fired. The
  // diagnostics are sorted by (file, line, col, rule); count per stable ID.
  bool first = true;
  for (const RuleInfo& rule : all_rules()) {
    std::size_t count = 0;
    for (const Diagnostic& d : r.diagnostics)
      if (d.rule == rule.id) ++count;
    if (!first) os << ",";
    first = false;
    json_escape(os, rule.id);
    os << ":" << count;
  }
  os << "},\"diagnostics\":[";
  for (std::size_t i = 0; i < r.diagnostics.size(); ++i) {
    const Diagnostic& d = r.diagnostics[i];
    if (i) os << ",";
    os << "{\"rule\":";
    json_escape(os, d.rule);
    os << ",\"file\":";
    json_escape(os, d.file);
    os << ",\"line\":" << d.line << ",\"col\":" << d.col << ",\"message\":";
    json_escape(os, d.message);
    os << "}";
  }
  os << "]}";
  return std::move(os).str();
}

}  // namespace lmc::analyze
