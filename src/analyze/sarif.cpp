#include "analyze/sarif.hpp"

#include <cstdio>
#include <sstream>

namespace lmc::analyze {

namespace {

void esc(std::ostringstream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

}  // namespace

std::string to_sarif(const LintResult& r, const std::string& tool_name,
                     const std::vector<RuleInfo>& rules) {
  std::ostringstream os;
  os << "{\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\","
        "\"version\":\"2.1.0\",\"runs\":[{\"tool\":{\"driver\":{\"name\":";
  esc(os, tool_name);
  os << ",\"rules\":[";
  for (std::size_t i = 0; i < rules.size(); ++i) {
    if (i) os << ",";
    os << "{\"id\":";
    esc(os, rules[i].id);
    os << ",\"shortDescription\":{\"text\":";
    esc(os, rules[i].summary);
    os << "}}";
  }
  os << "]}},\"results\":[";
  for (std::size_t i = 0; i < r.diagnostics.size(); ++i) {
    const Diagnostic& d = r.diagnostics[i];
    if (i) os << ",";
    os << "{\"ruleId\":";
    esc(os, d.rule);
    os << ",\"level\":\"warning\",\"message\":{\"text\":";
    esc(os, d.message);
    os << "},\"locations\":[{\"physicalLocation\":{\"artifactLocation\":{\"uri\":";
    esc(os, d.file);
    // SARIF regions are 1-based; diagnostics without a precise position
    // (e.g. the per-protocol IN rules) clamp to 1:1.
    os << "},\"region\":{\"startLine\":" << (d.line > 0 ? d.line : 1)
       << ",\"startColumn\":" << (d.col > 0 ? d.col : 1) << "}}}]}";
  }
  os << "]}]}";
  return std::move(os).str();
}

}  // namespace lmc::analyze
