// SARIF 2.1.0 emitter shared by lmc_lint and lmc_indep (--sarif). Minimal
// static-analysis profile: one run, the tool's rule table, one result per
// diagnostic with a physical location. Enough for code-scanning UIs and the
// CI artifact upload; deliberately nothing more.
#pragma once

#include <string>
#include <vector>

#include "analyze/lint.hpp"

namespace lmc::analyze {

/// Render `r` as a SARIF 2.1.0 log. `tool_name` names the driver;
/// `rules` is the driver's full rule table (fired or not).
std::string to_sarif(const LintResult& r, const std::string& tool_name,
                     const std::vector<RuleInfo>& rules);

}  // namespace lmc::analyze
