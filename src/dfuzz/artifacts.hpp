// Repro artifact writer, shared by lmc_fuzz and the tests: a shrunk oracle
// disagreement lands as <dir>/dfuzz_repro_seed<seed>.{bin,txt,lmc}. The
// .bin re-runs via `lmc_fuzz --repro`, the .txt is the human-readable rule
// table + shrink provenance, and the .lmc is the same minimal protocol as
// loadable DSL text (`lmc_run FILE.lmc --oracle` reproduces the check).
//
// Declared here but compiled into lmc_dsl: the .lmc emission needs the
// dfuzz<->dsl bridge, and lmc_dfuzz must stay below lmc_dsl in the layering.
#pragma once

#include <cstdint>
#include <string>

#include "dfuzz/protogen.hpp"
#include "dfuzz/shrink.hpp"

namespace lmc::dfuzz {

struct ArtifactPaths {
  std::string bin;
  std::string txt;
  std::string lmc;
};

/// Write the three artifact files under `dir` (created, with parents, if it
/// does not exist). Throws std::runtime_error on I/O failure.
ArtifactPaths write_repro_artifacts(const std::string& dir, std::uint64_t seed,
                                    const ShrinkResult& shrunk, const ProtoSpec& original);

}  // namespace lmc::dfuzz
