// lmc_fuzz: differential fuzzing driver.
//
//   lmc_fuzz [--seed S] [--runs N] [--max-nodes K] [--threads T]
//            [--lmc-threads L] [--time-budget SEC] [--audit-every K]
//            [--symmetry] [--symmetric-specs] [--por] [--out-dir DIR] [--verbose]
//   lmc_fuzz --repro FILE           re-run the oracle on a dumped spec
//
// --symmetry adds a per-seed reduced-vs-unreduced differential: LMC re-runs
// with SymmetryMode::kAuto and the confirmed-violation sets must agree up to
// within-class permutation (witnesses replayed). --symmetric-specs swaps the
// generator for generate_symmetric_spec (driver nodes + one replicated role
// class) so the reduction actually activates on most seeds. --por adds the
// partial-order-reduction differential: LMC re-runs with PorMode::kOn (the
// runtime commutation auditor checking every prune decision) and the
// confirmed sets must be exactly equal, with a 1-vs-8-thread checkpoint
// byte-identity check on top.
//
// Seeds S..S+N-1 each generate one random protocol and push it through the
// DiffOracle (global baseline vs LMC, witness replay, resume round-trip,
// OPT path). --threads fans the seeds out over a WorkerPool; results are
// merged in seed order, and each in-oracle LMC runs with --lmc-threads
// under PR 2's deterministic merge protocol — so the run's output is
// byte-identical for any --threads/--lmc-threads combination.
//
// A disagreement is greedily shrunk while the same divergence class
// persists, and the minimal protocol is dumped as
//   <out-dir>/dfuzz_repro_seed<seed>.{bin,txt,lmc}
// (.bin re-runs via --repro; .txt is the human-readable rule table; .lmc is
// the same protocol as loadable DSL text for `lmc_run`). --out-dir is
// created if missing and defaults to "."; --artifact-dir is a legacy alias.
// Exit status: 0 = no disagreement, 1 = disagreement(s), 2 = usage.
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "dfuzz/artifacts.hpp"
#include "dfuzz/oracle.hpp"
#include "dfuzz/protogen.hpp"
#include "dfuzz/shrink.hpp"
#include "mc/parallel_local_mc.hpp"
#include "obs/bench_schema.hpp"
#include "obs/prof.hpp"
#include "obs/trace.hpp"

namespace {

using namespace lmc;
using namespace lmc::dfuzz;

struct Args {
  std::uint64_t seed = 1;
  std::uint64_t runs = 100;
  std::uint32_t max_nodes = 4;
  unsigned threads = 1;
  unsigned lmc_threads = 1;
  double time_budget_s = 20.0;
  std::uint32_t audit_every = 0;
  bool audit_validity = false;
  bool check_symmetry = false;   ///< per-seed reduced-vs-unreduced differential
  bool check_por = false;        ///< per-seed POR-reduced-vs-unreduced differential
  bool symmetric_specs = false;  ///< generate via generate_symmetric_spec
  std::string artifact_dir = ".";
  std::string repro_file;
  std::string trace_dir;    ///< when set, per-seed "lmc-trace/1" JSONL files land here
  std::string profile_dir;  ///< when set, per-seed "lmc-prof/1" JSONL files land here
  bool verbose = false;
};

int usage() {
  std::fprintf(stderr,
               "usage: lmc_fuzz [--seed S] [--runs N] [--max-nodes K] [--threads T]\n"
               "                [--lmc-threads L] [--time-budget SEC] [--audit-every K]\n"
               "                [--audit-validity] [--symmetry] [--symmetric-specs] [--por]\n"
               "                [--out-dir DIR] [--trace-dir DIR] [--profile-dir DIR]\n"
               "                [--verbose]\n"
               "       lmc_fuzz --repro FILE\n");
  return 2;
}

bool parse_args(int argc, char** argv, Args& a) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    const char* v = nullptr;
    if (arg == "--verbose") {
      a.verbose = true;
    } else if (arg == "--seed" && (v = next())) {
      a.seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--runs" && (v = next())) {
      a.runs = std::strtoull(v, nullptr, 10);
    } else if (arg == "--max-nodes" && (v = next())) {
      a.max_nodes = static_cast<std::uint32_t>(std::strtoul(v, nullptr, 10));
    } else if (arg == "--threads" && (v = next())) {
      a.threads = static_cast<unsigned>(std::strtoul(v, nullptr, 10));
    } else if (arg == "--lmc-threads" && (v = next())) {
      a.lmc_threads = static_cast<unsigned>(std::strtoul(v, nullptr, 10));
    } else if (arg == "--time-budget" && (v = next())) {
      a.time_budget_s = std::strtod(v, nullptr);
    } else if (arg == "--audit-every" && (v = next())) {
      a.audit_every = static_cast<std::uint32_t>(std::strtoul(v, nullptr, 10));
    } else if (arg == "--audit-validity") {
      a.audit_validity = true;
    } else if (arg == "--symmetry") {
      a.check_symmetry = true;
    } else if (arg == "--por") {
      a.check_por = true;
    } else if (arg == "--symmetric-specs") {
      a.symmetric_specs = true;
    } else if ((arg == "--out-dir" || arg == "--artifact-dir") && (v = next())) {
      a.artifact_dir = v;
    } else if (arg == "--trace-dir" && (v = next())) {
      a.trace_dir = v;
    } else if (arg == "--profile-dir" && (v = next())) {
      a.profile_dir = v;
    } else if (arg == "--repro" && (v = next())) {
      a.repro_file = v;
    } else {
      return false;
    }
  }
  return a.runs > 0 && a.max_nodes >= 2;
}

OracleOptions oracle_options(const Args& a) {
  OracleOptions opt;
  opt.num_threads = a.lmc_threads;
  opt.gmc_time_budget_s = a.time_budget_s;
  opt.lmc_time_budget_s = a.time_budget_s;
  opt.audit_every = a.audit_every;
  opt.audit_validity = a.audit_validity;
  opt.check_symmetry = a.check_symmetry;
  opt.check_por = a.check_por;
  return opt;
}

Blob read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) throw std::runtime_error("cannot open " + path);
  Blob data;
  std::uint8_t buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) data.insert(data.end(), buf, buf + n);
  std::fclose(f);
  return data;
}

void dump_artifact(const Args& a, std::uint64_t seed, const ShrinkResult& shrunk,
                   const ProtoSpec& original) {
  ArtifactPaths paths = write_repro_artifacts(a.artifact_dir, seed, shrunk, original);
  std::printf("  repro dumped: %s + .txt + .lmc\n", paths.bin.c_str());
}

int run_repro(const Args& a) {
  const Blob data = read_file(a.repro_file);
  Reader r(data);
  ProtoSpec spec = ProtoSpec::deserialize(r);
  r.expect_exhausted();
  if (std::string err = validate_spec(spec); !err.empty()) {
    std::fprintf(stderr, "invalid spec: %s\n", err.c_str());
    return 2;
  }
  std::printf("%s", to_string(spec).c_str());
  GeneratedProtocol p = instantiate(spec);
  OracleReport rep = DiffOracle(oracle_options(a)).check(p.cfg, p.invariant.get());
  if (!rep.conclusive) {
    std::printf("inconclusive: %s\n", rep.detail.c_str());
    return 1;
  }
  if (rep.ok) {
    std::printf("ok: checkers agree (%" PRIu64 " global states, %" PRIu64
                " confirmed violations)\n",
                rep.gmc_states, rep.lmc_confirmed);
    return 0;
  }
  std::printf("DISAGREEMENT [%s]: %s\n", to_string(rep.failure), rep.detail.c_str());
  return 1;
}

struct SeedResult {
  OracleReport report;
  std::string error;  ///< non-empty when the oracle itself threw
};

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!parse_args(argc, argv, args)) return usage();
  try {
    if (!args.repro_file.empty()) return run_repro(args);

    GenLimits lim;
    lim.max_nodes = args.max_nodes;
    const OracleOptions oopt = oracle_options(args);
    auto gen = [&](std::uint64_t s) {
      return args.symmetric_specs ? generate_symmetric_spec(s, lim) : generate_spec(s, lim);
    };

    std::vector<SeedResult> results(args.runs);
    WorkerPool pool(args.threads);
    pool.run(args.runs, [&](std::size_t i) {
      const std::uint64_t seed = args.seed + i;
      try {
        GeneratedProtocol p = instantiate(gen(seed));
        if (args.trace_dir.empty() && args.profile_dir.empty()) {
          results[i].report = DiffOracle(oopt).check(p.cfg, p.invariant.get());
        } else {
          // Per-seed sinks and files: seeds fan out over workers, so a sink
          // must not be shared across them.
          obs::TraceSink sink;
          obs::ProfileSink prof;
          OracleOptions topt = oopt;
          if (!args.trace_dir.empty()) topt.trace = &sink;
          if (!args.profile_dir.empty()) topt.profile = &prof;
          results[i].report = DiffOracle(topt).check(p.cfg, p.invariant.get());
          if (!args.trace_dir.empty())
            sink.write_jsonl(args.trace_dir + "/dfuzz_trace_seed" + std::to_string(seed) +
                             ".jsonl");
          if (!args.profile_dir.empty())
            prof.write_jsonl(args.profile_dir + "/dfuzz_prof_seed" + std::to_string(seed) +
                             ".jsonl");
        }
      } catch (const std::exception& e) {
        results[i].error = e.what();
      }
    });

    // Merge in seed order: the printed stream is deterministic per --seed.
    std::uint64_t ok = 0, inconclusive = 0, failed = 0, errored = 0, with_bugs = 0;
    std::uint64_t gmc_states = 0, gmc_transitions = 0, lmc_transitions = 0, confirmed = 0,
                  replayed = 0, resumes = 0, opts = 0, audited = 0, handler_audits = 0,
                  model_invalid = 0, syms = 0, sym_orbits = 0, pors = 0, por_pruned = 0,
                  por_audits = 0;
    std::vector<std::uint64_t> failed_seeds;
    for (std::size_t i = 0; i < results.size(); ++i) {
      const std::uint64_t seed = args.seed + i;
      const SeedResult& r = results[i];
      if (!r.error.empty()) {
        ++errored;
        std::printf("seed %" PRIu64 ": ERROR %s\n", seed, r.error.c_str());
        continue;
      }
      const OracleReport& rep = r.report;
      gmc_states += rep.gmc_states;
      gmc_transitions += rep.gmc_transitions;
      lmc_transitions += rep.lmc_transitions;
      confirmed += rep.lmc_confirmed;
      replayed += rep.witnesses_replayed;
      audited += rep.tuples_audited;
      handler_audits += rep.handler_audits;
      resumes += rep.resume_checked ? 1 : 0;
      opts += rep.opt_checked ? 1 : 0;
      syms += rep.sym_checked ? 1 : 0;
      sym_orbits += rep.sym_orbits;
      pors += rep.por_checked ? 1 : 0;
      por_pruned += rep.por_pruned;
      por_audits += rep.por_audits;
      if (rep.gmc_violation_tuples > 0) ++with_bugs;
      if (!rep.conclusive) {
        ++inconclusive;
        if (args.verbose) std::printf("seed %" PRIu64 ": inconclusive (%s)\n", seed,
                                      rep.detail.c_str());
      } else if (rep.ok) {
        ++ok;
        if (args.verbose)
          std::printf("seed %" PRIu64 ": ok (%" PRIu64 " global states, %" PRIu64
                      " confirmed)\n",
                      seed, rep.gmc_states, rep.lmc_confirmed);
      } else {
        ++failed;
        if (rep.failure == OracleFailure::ModelInvalid) ++model_invalid;
        failed_seeds.push_back(seed);
        std::printf("seed %" PRIu64 ": DISAGREEMENT [%s] %s\n", seed, to_string(rep.failure),
                    rep.detail.c_str());
      }
    }

    // Shrink serially after the sweep: failures are rare and a stable
    // artifact should not depend on worker scheduling.
    for (std::uint64_t seed : failed_seeds) {
      const ProtoSpec original = gen(seed);
      const OracleFailure kind = results[seed - args.seed].report.failure;
      std::printf("shrinking seed %" PRIu64 " [%s]...\n", seed, to_string(kind));
      ShrinkResult shrunk = shrink_spec(original, kind, oopt);
      dump_artifact(args, seed, shrunk, original);
    }

    std::printf("lmc_fuzz: %" PRIu64 " run(s): %" PRIu64 " ok, %" PRIu64 " inconclusive, %" PRIu64
                " disagreement(s), %" PRIu64 " error(s)\n",
                static_cast<std::uint64_t>(args.runs), ok, inconclusive, failed, errored);
    std::printf("  protocols with real violations: %" PRIu64 "\n", with_bugs);
    std::printf("  global: %" PRIu64 " states / %" PRIu64 " transitions; lmc: %" PRIu64
                " transitions, %" PRIu64 " confirmed violations\n",
                gmc_states, gmc_transitions, lmc_transitions, confirmed);
    std::printf("  witnesses replayed: %" PRIu64 "; resume round-trips: %" PRIu64
                "; OPT runs: %" PRIu64 "; tuples audited: %" PRIu64 "\n",
                replayed, resumes, opts, audited);
    if (args.check_symmetry)
      std::printf("  symmetry-reduced runs: %" PRIu64 " (%" PRIu64 " orbits materialized)\n",
                  syms, sym_orbits);
    if (args.check_por)
      std::printf("  POR-reduced runs: %" PRIu64 " (%" PRIu64 " deliveries pruned, %" PRIu64
                  " commutation audits)\n",
                  pors, por_pruned, por_audits);
    if (args.audit_validity)
      std::printf("  handler executions audited: %" PRIu64 " (%" PRIu64 " validity failure(s))\n",
                  handler_audits, model_invalid);

    obs::BenchRecord rec("lmc_fuzz", "sweep");
    rec.param("seed", args.seed);
    rec.param("runs", args.runs);
    rec.param("max_nodes", static_cast<std::uint64_t>(args.max_nodes));
    rec.param("lmc_threads", static_cast<std::uint64_t>(args.lmc_threads));
    rec.metric("ok", ok);
    rec.metric("inconclusive", inconclusive);
    rec.metric("disagreements", failed);
    rec.metric("errors", errored);
    rec.metric("protocols_with_bugs", with_bugs);
    rec.metric("gmc_states", gmc_states);
    rec.metric("gmc_transitions", gmc_transitions);
    rec.metric("lmc_transitions", lmc_transitions);
    rec.metric("confirmed_violations", confirmed);
    rec.metric("witnesses_replayed", replayed);
    rec.metric("resume_round_trips", resumes);
    rec.metric("opt_runs", opts);
    rec.metric("sym_runs", syms);
    rec.metric("sym_orbits", sym_orbits);
    rec.metric("por_runs", pors);
    rec.metric("por_pruned", por_pruned);
    rec.metric("por_audits", por_audits);
    rec.emit();
    return (failed > 0 || errored > 0) ? 1 : 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
