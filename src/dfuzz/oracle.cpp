#include "dfuzz/oracle.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "analyze/independence/auditor.hpp"
#include "mc/global_mc.hpp"
#include "mc/local_mc.hpp"
#include "mc/replay.hpp"
#include "mc/symmetry/role_group.hpp"
#include "persist/checkpoint.hpp"
#include "runtime/audit.hpp"
#include "runtime/hash.hpp"

#ifdef _WIN32
#include <process.h>
#define LMC_GETPID _getpid
#else
#include <unistd.h>
#define LMC_GETPID getpid
#endif

namespace lmc::dfuzz {

const char* to_string(OracleFailure f) {
  switch (f) {
    case OracleFailure::None: return "none";
    case OracleFailure::MissingNodeState: return "missing-node-state";
    case OracleFailure::GmcViolationMissing: return "gmc-violation-missing-from-lmc";
    case OracleFailure::UnsoundConfirmed: return "unsound-confirmed-violation";
    case OracleFailure::InvariantHoldsOnConfirmed: return "invariant-holds-on-confirmed";
    case OracleFailure::WitnessReplayFailed: return "witness-replay-failed";
    case OracleFailure::ResumeMismatch: return "resume-mismatch";
    case OracleFailure::AuditUnsound: return "audit-unsound";
    case OracleFailure::AuditReplayFailed: return "audit-replay-failed";
    case OracleFailure::OptViolationMissed: return "opt-violation-missed";
    case OracleFailure::OptSpuriousViolation: return "opt-spurious-violation";
    case OracleFailure::ModelInvalid: return "model-invalid";
    case OracleFailure::SymmetryViolationMismatch: return "symmetry-violation-mismatch";
    case OracleFailure::SymmetryReplayFailed: return "symmetry-witness-replay-failed";
    case OracleFailure::PorViolationMismatch: return "por-violation-mismatch";
    case OracleFailure::PorReplayFailed: return "por-witness-replay-failed";
    case OracleFailure::PorThreadMismatch: return "por-thread-mismatch";
    case OracleFailure::PorAuditFailed: return "por-audit-failed";
  }
  return "?";
}

namespace {

/// Same combined tuple hash the global checker keys sys_tuples_ by.
Hash64 tuple_hash(const std::vector<Hash64>& tuple) {
  Hash64 h = 0x9e3779b97f4a7c15ULL;
  for (Hash64 nh : tuple) h = hash_combine(h, nh);
  return h;
}

std::string tuple_str(const std::vector<Hash64>& tuple) {
  std::ostringstream os;
  os << "(";
  for (std::size_t i = 0; i < tuple.size(); ++i) os << (i ? " " : "") << std::hex << tuple[i];
  os << ")";
  return std::move(os).str();
}

std::string scratch_checkpoint_path(const std::string& dir) {
  static std::atomic<std::uint64_t> counter{0};
  namespace fs = std::filesystem;
  fs::path base = dir.empty() ? fs::temp_directory_path() : fs::path(dir);
  const std::uint64_t id = counter.fetch_add(1);
  return (base / ("lmc_dfuzz_" + std::to_string(LMC_GETPID()) + "_" + std::to_string(id) +
                  ".ckpt"))
      .string();
}

}  // namespace

// Wall-clock and allocator-dependent stats are not exploration state: zero
// them so two equivalent runs encode to identical checkpoint bytes.
Blob normalized_checkpoint_bytes(const Blob& checkpoint) {
  CheckerImage img = decode_checkpoint(checkpoint);
  img.stats.elapsed_s = 0.0;
  img.stats.soundness_s = 0.0;
  img.stats.system_state_s = 0.0;
  img.stats.deferred_s = 0.0;
  img.stats.soundness_wall_s = 0.0;
  img.stats.stored_bytes = 0;
  // Trace-segment stamps differ between a straight run (segment 0) and an
  // interrupted+resumed one (segment 1+) by design; they are attribution,
  // not exploration state.
  img.segment_id = 0;
  img.base_round = 0;
  // The commutation-audit counter tracks the audit SETTING, not the
  // exploration: an audited and an unaudited run of the same search differ
  // only here.
  img.por_stats.audits = 0;
  return encode_checkpoint(img);
}

OracleReport DiffOracle::check(const SystemConfig& cfg, const Invariant* invariant) const {
  OracleReport rep;
  auto fail = [&](OracleFailure f, std::string detail) {
    // Keep the FIRST divergence: later checks may be downstream noise of it.
    if (rep.ok) {
      rep.ok = false;
      rep.failure = f;
      rep.detail = std::move(detail);
    }
  };

  // --- reference: global B-DFS over full (L, I) states ----------------------
  GlobalMcOptions gopt;
  gopt.collect_system_states = true;
  // Match LMC's AssertPolicy::DiscardState: an assert-failed successor is
  // dropped in both worlds, so the reachable-state comparison is apples to
  // apples (the divergence on the asserting handler's SENT messages is
  // intentional — I+ keeps them, the global network does not — and only
  // widens LMC's exploration, which the soundness checks keep honest).
  gopt.assert_is_violation = false;
  gopt.check_invariants = invariant != nullptr;
  gopt.max_transitions = opt_.gmc_max_transitions;
  gopt.time_budget_s = opt_.gmc_time_budget_s;
  GlobalModelChecker g(cfg, invariant, gopt);
  g.run_from_initial();
  rep.gmc_states = g.stats().unique_states;
  rep.gmc_transitions = g.stats().transitions;
  rep.gmc_system_tuples = g.system_state_tuples().size();
  if (!g.stats().completed) {
    rep.conclusive = false;
    rep.detail = "global baseline hit a budget; no verdict";
    return rep;
  }

  // --- subject: LMC on the GEN path -----------------------------------------
  LocalMcOptions lopt;
  lopt.stop_on_confirmed = false;  // the full violation set, not the first
  lopt.num_threads = opt_.num_threads;
  lopt.max_transitions = opt_.lmc_max_transitions;
  lopt.time_budget_s = opt_.lmc_time_budget_s;
  lopt.soundness = opt_.soundness;
  lopt.audit_validity = opt_.audit_validity;
  lopt.trace = opt_.trace;
  lopt.profile = opt_.profile;
  LocalModelChecker l(cfg, invariant, lopt);
  try {
    l.run_from_initial();
  } catch (const ModelValidityError& e) {
    rep.handler_audits = l.audits_performed();
    fail(OracleFailure::ModelInvalid, e.what());
    return rep;
  }
  rep.handler_audits = l.audits_performed();
  rep.lmc_node_states = l.stats().node_states;
  rep.lmc_transitions = l.stats().transitions;
  rep.lmc_confirmed = l.stats().confirmed_violations;
  rep.lmc_unsound_rejected = l.stats().unsound_violations;
  if (!l.stats().completed) {
    rep.conclusive = false;
    rep.detail = "local checker hit a budget; no verdict";
    return rep;
  }
  if (l.stats().deferred_dropped) {
    rep.conclusive = false;
    rep.detail = "local checker overflowed the deferred queue; confirmed set may be partial";
    return rep;
  }

  // --- completeness: global node states are all locally traversed -----------
  for (const auto& [h, tuple] : g.system_state_tuples()) {
    (void)h;
    for (NodeId n = 0; n < cfg.num_nodes; ++n) {
      if (l.store().find(n, tuple[n]) == UINT32_MAX) {
        fail(OracleFailure::MissingNodeState,
             "node " + std::to_string(n) + " state " + tuple_str({tuple[n]}) +
                 " reached globally but never traversed by LMC");
        break;
      }
    }
    if (!rep.ok) break;
  }

  // --- violation-set comparison ---------------------------------------------
  if (invariant != nullptr) {
    // Deduplicate global violations by system tuple (many global states —
    // differing only in the network — project to one violating tuple).
    std::unordered_map<Hash64, std::vector<Hash64>> gmc_viol;
    for (const GlobalViolation& v : g.violations()) {
      std::vector<Hash64> tuple;
      tuple.reserve(v.system_state.size());
      for (const Blob& b : v.system_state) tuple.push_back(hash_blob(b));
      gmc_viol.emplace(tuple_hash(tuple), std::move(tuple));
    }
    rep.gmc_violation_tuples = gmc_viol.size();

    std::unordered_set<Hash64> lmc_confirmed;
    for (const LocalViolation& v : l.violations())
      if (v.confirmed) lmc_confirmed.insert(tuple_hash(v.state_hashes));

    // (a) completeness of the verdicts: nothing the global search flags is
    // missing from LMC's confirmed set.
    for (const auto& [h, tuple] : gmc_viol) {
      if (!lmc_confirmed.count(h))
        fail(OracleFailure::GmcViolationMissing,
             "globally found violation " + tuple_str(tuple) +
                 " is not among LMC's confirmed violations");
    }

    // (b) soundness of the verdicts: every confirmed tuple is globally
    // reachable and really violates the invariant.
    for (const LocalViolation& v : l.violations()) {
      if (!v.confirmed) continue;
      const Hash64 h = tuple_hash(v.state_hashes);
      auto it = g.system_state_tuples().find(h);
      if (it == g.system_state_tuples().end() || it->second != v.state_hashes) {
        fail(OracleFailure::UnsoundConfirmed,
             "confirmed violation " + tuple_str(v.state_hashes) +
                 " names a system state the global search never reached");
        continue;
      }
      SystemStateView view;
      view.reserve(v.system_state.size());
      for (const Blob& b : v.system_state) view.push_back(&b);
      if (invariant->holds(cfg, view))
        fail(OracleFailure::InvariantHoldsOnConfirmed,
             "confirmed violation " + tuple_str(v.state_hashes) +
                 " does not actually violate " + invariant->name());
    }
  }

  // --- witness replay of every confirmed violation --------------------------
  if (opt_.check_replay) {
    for (const LocalViolation& v : l.violations()) {
      if (!v.confirmed) continue;
      ReplayResult r = replay_schedule(cfg, l.initial_nodes(), l.initial_in_flight(), v.witness,
                                       l.events(), v.state_hashes);
      ++rep.witnesses_replayed;
      if (!r.ok)
        fail(OracleFailure::WitnessReplayFailed,
             "witness for " + tuple_str(v.state_hashes) + " failed to replay: " + r.error);
    }
  }

  // --- sampled soundness audit of reachable tuples ---------------------------
  if (opt_.audit_every > 0) {
    // unordered_map iteration order is not deterministic across platforms:
    // sort by tuple hash so the sampled subset is pinned.
    std::vector<const std::pair<const Hash64, std::vector<Hash64>>*> tuples;
    tuples.reserve(g.system_state_tuples().size());
    for (const auto& kv : g.system_state_tuples()) tuples.push_back(&kv);
    std::sort(tuples.begin(), tuples.end(),
              [](const auto* a, const auto* b) { return a->first < b->first; });
    SoundnessVerifier verifier(l.store(), l.initial_in_flight_hashes(), opt_.soundness);
    std::uint64_t k = 0;
    for (const auto* kv : tuples) {
      if (++k % opt_.audit_every != 0) continue;
      std::vector<std::uint32_t> combo;
      combo.reserve(cfg.num_nodes);
      bool mapped = true;
      for (NodeId n = 0; n < cfg.num_nodes; ++n) {
        std::uint32_t idx = l.store().find(n, kv->second[n]);
        if (idx == UINT32_MAX) mapped = false;  // already reported above
        combo.push_back(idx);
      }
      if (!mapped) continue;
      SoundnessResult res = verifier.verify(combo);
      ++rep.tuples_audited;
      if (!res.sound) {
        fail(OracleFailure::AuditUnsound, "globally reachable tuple " + tuple_str(kv->second) +
                                              " rejected by soundness verification");
        continue;
      }
      ReplayResult r = replay_schedule(cfg, l.initial_nodes(), l.initial_in_flight(),
                                       res.schedule, l.events(), kv->second);
      if (!r.ok)
        fail(OracleFailure::AuditReplayFailed,
             "audit schedule for " + tuple_str(kv->second) + " failed to replay: " + r.error);
    }
  }

  // --- checkpoint/resume round-trip ------------------------------------------
  if (opt_.check_resume && l.stats().transitions >= 4) {
    LocalMcOptions half = lopt;
    half.trace = nullptr;
    half.profile = nullptr;
    half.max_transitions = l.stats().transitions / 2;
    LocalModelChecker interrupted(cfg, invariant, half);
    interrupted.run_from_initial();
    const std::string path = scratch_checkpoint_path(opt_.scratch_dir);
    interrupted.save_checkpoint(path);

    LocalMcOptions ropt = lopt;
    ropt.trace = nullptr;
    ropt.profile = nullptr;
    LocalModelChecker resumed(cfg, invariant, ropt);
    resumed.run_resumed(path);
    std::remove(path.c_str());
    rep.resume_checked = true;
    if (!resumed.stats().completed) {
      rep.conclusive = false;
      if (rep.detail.empty()) rep.detail = "resumed run hit a budget; round-trip not judged";
    } else if (normalized_checkpoint_bytes(resumed.checkpoint_bytes()) !=
               normalized_checkpoint_bytes(l.checkpoint_bytes())) {
      fail(OracleFailure::ResumeMismatch,
           "interrupt+resume produced a different exploration than the straight run");
    }
  }

  // --- OPT path: projection-driven system-state creation ----------------------
  if (opt_.check_opt && invariant != nullptr && invariant->has_projection()) {
    LocalMcOptions oopt = lopt;
    oopt.trace = nullptr;
    oopt.profile = nullptr;
    oopt.use_projection = true;
    LocalModelChecker o(cfg, invariant, oopt);
    o.run_from_initial();
    if (!o.stats().completed) {
      rep.conclusive = false;
      if (rep.detail.empty()) rep.detail = "OPT run hit a budget; OPT path not judged";
    } else {
      rep.opt_checked = true;
      rep.opt_confirmed = o.stats().confirmed_violations;
      // OPT verifies pair conflicts with free bystanders, so its confirmed
      // tuples need not equal the global ones — but bug presence must agree.
      if (rep.gmc_violation_tuples > 0 && o.stats().confirmed_violations == 0)
        fail(OracleFailure::OptViolationMissed,
             "global search finds a violation but LMC-OPT confirms none");
      if (rep.gmc_violation_tuples == 0 && o.stats().confirmed_violations > 0)
        fail(OracleFailure::OptSpuriousViolation,
             "LMC-OPT confirms a violation on a protocol the global search proves clean");
      for (const LocalViolation& v : o.violations()) {
        if (!v.confirmed) continue;
        const Hash64 h = tuple_hash(v.state_hashes);
        auto it = g.system_state_tuples().find(h);
        if (it == g.system_state_tuples().end() || it->second != v.state_hashes) {
          fail(OracleFailure::UnsoundConfirmed,
               "OPT-confirmed violation " + tuple_str(v.state_hashes) +
                   " names a system state the global search never reached");
          continue;
        }
        if (opt_.check_replay) {
          ReplayResult r = replay_schedule(cfg, o.initial_nodes(), o.initial_in_flight(),
                                           v.witness, o.events(), v.state_hashes);
          ++rep.witnesses_replayed;
          if (!r.ok)
            fail(OracleFailure::WitnessReplayFailed,
                 "OPT witness for " + tuple_str(v.state_hashes) + " failed to replay: " + r.error);
        }
      }
    }
  }

  // --- symmetry reduction differential ---------------------------------------
  // The unreduced GEN run above is the reference: re-run with the reduction
  // on and demand the confirmed sets agree up to within-class permutation.
  if (opt_.check_symmetry && invariant != nullptr) {
    LocalMcOptions sopt = lopt;
    sopt.trace = nullptr;
    sopt.profile = nullptr;
    sopt.symmetry.mode = symmetry::SymmetryMode::kAuto;
    LocalModelChecker s(cfg, invariant, sopt);
    s.run_from_initial();
    const std::vector<std::vector<NodeId>> classes = s.symmetry_classes();
    if (!s.stats().completed) {
      rep.conclusive = false;
      if (rep.detail.empty()) rep.detail = "symmetry run hit a budget; reduction not judged";
    } else if (!classes.empty()) {
      // classes empty = the reduction never activated (no replicated roles,
      // or the invariant is order-sensitive): nothing to compare, the run
      // was just the unreduced search again.
      rep.sym_checked = true;
      rep.sym_orbits = s.symmetry_stats().orbits;
      rep.sym_confirmed = s.stats().confirmed_violations;
      std::unordered_map<Hash64, std::vector<Hash64>> base_keys, sym_keys;
      for (const LocalViolation& v : l.violations())
        if (v.confirmed)
          base_keys.emplace(symmetry::canonical_key(v.state_hashes, classes), v.state_hashes);
      for (const LocalViolation& v : s.violations())
        if (v.confirmed)
          sym_keys.emplace(symmetry::canonical_key(v.state_hashes, classes), v.state_hashes);
      for (const auto& [k, tuple] : base_keys)
        if (!sym_keys.count(k))
          fail(OracleFailure::SymmetryViolationMismatch,
               "violation " + tuple_str(tuple) +
                   " confirmed by the unreduced run has no permutation-equivalent " +
                   "counterpart in the reduced run");
      for (const auto& [k, tuple] : sym_keys)
        if (!base_keys.count(k))
          fail(OracleFailure::SymmetryViolationMismatch,
               "reduced run confirmed " + tuple_str(tuple) +
                   " with no permutation-equivalent counterpart in the unreduced run");
      // The reduced run reports CONCRETE assignments (de-canonicalized in
      // the drain): each witness must replay through the real handlers to
      // exactly the claimed per-node states.
      if (opt_.check_replay) {
        for (const LocalViolation& v : s.violations()) {
          if (!v.confirmed) continue;
          ReplayResult r = replay_schedule(cfg, s.initial_nodes(), s.initial_in_flight(),
                                           v.witness, s.events(), v.state_hashes);
          ++rep.witnesses_replayed;
          if (!r.ok)
            fail(OracleFailure::SymmetryReplayFailed,
                 "symmetry witness for " + tuple_str(v.state_hashes) +
                     " failed to replay: " + r.error);
        }
      }
    }
  }

  // --- partial-order reduction differential ----------------------------------
  // The unreduced GEN run above is again the reference. POR claims only to
  // skip REDUNDANT interleavings — the set of confirmed violations must be
  // exactly equal (no permutation slack, unlike symmetry), every reduced-run
  // witness must replay through the real handlers, and because prune
  // decisions happen at publish time on the deterministic thread, a
  // 1-thread and an 8-thread reduced run must explore byte-identically.
  if (opt_.check_por && invariant != nullptr) {
    LocalMcOptions popt = lopt;
    popt.trace = nullptr;
    popt.profile = nullptr;
    popt.por.mode = indep::PorMode::kOn;
    popt.por.audit = true;
    popt.por.audit_every = 1;
    LocalModelChecker p(cfg, invariant, popt);
    bool audit_threw = false;
    try {
      p.run_from_initial();
    } catch (const indep::PorAuditError& e) {
      audit_threw = true;
      fail(OracleFailure::PorAuditFailed,
           std::string("commutation auditor refuted a claimed-independent pair: ") + e.what());
    }
    if (!audit_threw) {
      if (!p.stats().completed) {
        rep.conclusive = false;
        if (rep.detail.empty()) rep.detail = "POR run hit a budget; reduction not judged";
      } else if (p.por_stats().active != 0) {
        // active == 0 = the reduction never resolved on (no footprints or an
        // empty relation): the run was just the unreduced search again.
        rep.por_checked = true;
        rep.por_relation_pairs = p.por_stats().relation_pairs;
        rep.por_pruned = p.por_stats().pairs_pruned;
        rep.por_audits = p.por_stats().audits;
        rep.por_confirmed = p.stats().confirmed_violations;
        std::unordered_map<Hash64, std::vector<Hash64>> base_t, por_t;
        for (const LocalViolation& v : l.violations())
          if (v.confirmed) base_t.emplace(tuple_hash(v.state_hashes), v.state_hashes);
        for (const LocalViolation& v : p.violations())
          if (v.confirmed) por_t.emplace(tuple_hash(v.state_hashes), v.state_hashes);
        for (const auto& [k, tuple] : base_t)
          if (!por_t.count(k))
            fail(OracleFailure::PorViolationMismatch,
                 "violation " + tuple_str(tuple) +
                     " confirmed by the unreduced run is missing from the POR run");
        for (const auto& [k, tuple] : por_t)
          if (!base_t.count(k))
            fail(OracleFailure::PorViolationMismatch,
                 "POR run confirmed " + tuple_str(tuple) +
                     " which the unreduced run did not");
        if (opt_.check_replay) {
          for (const LocalViolation& v : p.violations()) {
            if (!v.confirmed) continue;
            ReplayResult r = replay_schedule(cfg, p.initial_nodes(), p.initial_in_flight(),
                                             v.witness, p.events(), v.state_hashes);
            ++rep.witnesses_replayed;
            if (!r.ok)
              fail(OracleFailure::PorReplayFailed,
                   "POR witness for " + tuple_str(v.state_hashes) +
                       " failed to replay: " + r.error);
          }
        }
        // Thread-count identity under pruning (the auditor stays off here:
        // it only adds checks, never changes exploration, and one audited
        // run already covered every prune decision).
        LocalMcOptions p8opt = popt;
        p8opt.por.audit = false;
        p8opt.num_threads = 8;
        LocalModelChecker p8(cfg, invariant, p8opt);
        p8.run_from_initial();
        if (!p8.stats().completed) {
          rep.conclusive = false;
          if (rep.detail.empty())
            rep.detail = "8-thread POR run hit a budget; thread identity not judged";
        } else if (normalized_checkpoint_bytes(p8.checkpoint_bytes()) !=
                   normalized_checkpoint_bytes(p.checkpoint_bytes())) {
          fail(OracleFailure::PorThreadMismatch,
               "1-thread and 8-thread POR runs produced different normalized checkpoints");
        }
      }
    }
  }

  return rep;
}

}  // namespace lmc::dfuzz
