// DiffOracle: differential cross-check of the local checker against the
// global baseline on one protocol (generated or hand-written).
//
// The oracle re-proves, per protocol, the paper's two load-bearing claims:
//  * completeness — every node state inside any system state the global
//    B-DFS visits is traversed by LMC, and every invariant violation the
//    global search finds appears among LMC's CONFIRMED violations;
//  * soundness — every LMC confirmed violation names a system state the
//    global search also reached (no infeasible state admitted), its
//    invariant really fails, and its witness schedule replays through the
//    real handlers to exactly the claimed states.
// On top it checks the persistence contract: interrupting the same run
// mid-way and resuming from the checkpoint yields a byte-identical result
// set (stores, I+, violations, counters — wall-clock stats excluded).
//
// Both claims are decidable only against a COMPLETED baseline, so a budget
// stop on either checker makes the verdict `conclusive == false` (skipped,
// not failed). The whole pass is deterministic: unordered containers are
// sampled in sorted order and LMC runs with the PR 2 merge protocol, so a
// seed corpus reproduces bit-for-bit at any thread count.
#pragma once

#include <cstdint>
#include <limits>
#include <string>

#include "mc/invariant.hpp"
#include "mc/soundness.hpp"
#include "runtime/state_machine.hpp"

namespace lmc::obs {
class TraceSink;
class ProfileSink;
}

namespace lmc::dfuzz {

struct OracleOptions {
  std::uint64_t gmc_max_transitions = 2'000'000;
  double gmc_time_budget_s = 60.0;
  std::uint64_t lmc_max_transitions = std::numeric_limits<std::uint64_t>::max();
  double lmc_time_budget_s = 60.0;
  /// LMC phase-2 threads (PR 2): results must be identical for any value.
  unsigned num_threads = 1;

  bool check_gen = true;     ///< GEN-path differential run (exact violation sets)
  bool check_opt = true;     ///< OPT-path run when the invariant has a projection
  bool check_resume = true;  ///< mid-run checkpoint/resume round-trip
  bool check_replay = true;  ///< witness replay of every confirmed violation

  /// Re-run LMC with symmetry reduction (SymmetryMode::kAuto) and demand the
  /// confirmed-violation set match the unreduced run up to within-class
  /// permutation (symmetry::canonical_key), with every de-canonicalized
  /// witness replaying through the real handlers. Silently skipped when the
  /// reduction does not activate (no classes / ordered invariant).
  bool check_symmetry = false;

  /// Re-run LMC with partial-order reduction (PorMode::kOn, the runtime
  /// commutation auditor on at every prune decision) and demand the
  /// confirmed-violation set EXACTLY equal the unreduced run's — POR claims
  /// to skip redundant interleavings only, so unlike symmetry there is no
  /// permutation slack. Every reduced-run witness must replay, and a
  /// 1-thread and an 8-thread reduced run must produce byte-identical
  /// normalized checkpoints. Silently skipped when the reduction does not
  /// activate (no footprints / empty relation / bounded total or chain
  /// depth — pruning shifts recorded depths, so bounds would truncate).
  bool check_por = false;

  /// Sampled soundness audit: every k-th globally reached system state
  /// (sorted by tuple hash) must verify sound and replay. 0 disables —
  /// the audit is the old hand-written cross-check, quadratic-ish in
  /// tuple count, so fuzz runs keep it off and the ported tier-1
  /// cross-check test turns it on.
  std::uint32_t audit_every = 0;

  /// Run the GEN-path LMC with the ModelValidityAuditor
  /// (LocalMcOptions::audit_validity): every handler execution of the seed
  /// is audited for determinism, round-trip identity and hidden state. The
  /// GEN path executes every (state, event) pair, so one audited run covers
  /// the protocol; the OPT/resume re-runs stay unaudited for speed.
  bool audit_validity = false;

  /// Directory for the resume round-trip's scratch checkpoint file;
  /// empty = std::filesystem::temp_directory_path().
  std::string scratch_dir;

  /// Optional trace sink attached to the primary GEN-path LMC run only
  /// (the interrupted/resumed and OPT re-runs stay untraced so one sink
  /// holds one coherent exploration). Not owned.
  obs::TraceSink* trace = nullptr;

  /// Optional profile sink, same contract as `trace`: primary GEN-path run
  /// only, so the profile describes one coherent exploration. Not owned.
  obs::ProfileSink* profile = nullptr;

  SoundnessOptions soundness;
};

enum class OracleFailure {
  None,
  MissingNodeState,      ///< GMC reached a node state LMC never traversed
  GmcViolationMissing,   ///< a global violation is not among LMC's confirmed set
  UnsoundConfirmed,      ///< LMC confirmed a tuple the global search never reached
  InvariantHoldsOnConfirmed,  ///< confirmed violation whose invariant holds
  WitnessReplayFailed,
  ResumeMismatch,        ///< interrupted+resumed run diverged from the straight run
  AuditUnsound,          ///< sampled reachable tuple rejected by SoundnessVerifier
  AuditReplayFailed,
  OptViolationMissed,    ///< OPT found nothing where the global search found a bug
  OptSpuriousViolation,  ///< OPT confirmed where the global search found nothing
  ModelInvalid,          ///< ModelValidityAuditor rejected a handler execution
  SymmetryViolationMismatch,  ///< reduced/unreduced confirmed sets differ mod permutation
  SymmetryReplayFailed,       ///< a reduced run's de-canonicalized witness failed to replay
  PorViolationMismatch,  ///< POR-reduced confirmed set differs from the unreduced run's
  PorReplayFailed,       ///< a POR run's witness failed to replay
  PorThreadMismatch,     ///< 1-thread and 8-thread POR runs explored differently
  PorAuditFailed,        ///< runtime commutation auditor caught a divergent pair
};

const char* to_string(OracleFailure f);

/// Decode a checkpoint, zero the wall-clock/allocator-dependent stats
/// (elapsed/soundness/system-state/deferred seconds, stored bytes) and
/// re-encode: two runs explored identically iff these bytes are equal.
Blob normalized_checkpoint_bytes(const Blob& checkpoint);

struct OracleReport {
  bool ok = true;
  /// False when a checker hit a budget: no verdict either way.
  bool conclusive = true;
  OracleFailure failure = OracleFailure::None;
  std::string detail;

  // Coverage counters for corpus statistics.
  std::uint64_t gmc_states = 0;
  std::uint64_t gmc_transitions = 0;
  std::uint64_t gmc_system_tuples = 0;
  std::uint64_t gmc_violation_tuples = 0;  ///< deduplicated
  std::uint64_t lmc_node_states = 0;
  std::uint64_t lmc_transitions = 0;
  std::uint64_t lmc_confirmed = 0;
  std::uint64_t lmc_unsound_rejected = 0;
  std::uint64_t opt_confirmed = 0;
  std::uint64_t witnesses_replayed = 0;
  std::uint64_t tuples_audited = 0;
  std::uint64_t handler_audits = 0;  ///< handler executions audited (audit_validity)
  bool resume_checked = false;
  bool opt_checked = false;
  bool sym_checked = false;        ///< symmetry run completed with the reduction ACTIVE
  std::uint64_t sym_orbits = 0;    ///< canonical combinations the reduced run materialized
  std::uint64_t sym_confirmed = 0; ///< confirmed violations in the reduced run
  bool por_checked = false;          ///< POR run completed with the reduction ACTIVE
  std::uint64_t por_relation_pairs = 0;  ///< static independence pairs resolved
  std::uint64_t por_pruned = 0;      ///< deliveries the reduced run pruned
  std::uint64_t por_audits = 0;      ///< runtime commutation audits executed
  std::uint64_t por_confirmed = 0;   ///< confirmed violations in the reduced run
};

class DiffOracle {
 public:
  explicit DiffOracle(OracleOptions opt = {}) : opt_(opt) {}

  /// Cross-check both checkers from the protocol's initial states. With a
  /// null invariant only exploration completeness, the sampled audit and
  /// the resume round-trip run (there are no violations to compare).
  OracleReport check(const SystemConfig& cfg, const Invariant* invariant) const;

 private:
  OracleOptions opt_;
};

}  // namespace lmc::dfuzz
