// Greedy shrinker for oracle disagreements: keep deleting protocol pieces
// while the SAME class of divergence persists, so a repro artifact lands as
// the smallest protocol that still shows the bug.
#pragma once

#include <cstdint>

#include "dfuzz/oracle.hpp"
#include "dfuzz/protogen.hpp"

namespace lmc::dfuzz {

struct ShrinkResult {
  ProtoSpec spec;         ///< smallest failing spec found
  OracleReport report;    ///< the oracle report on that spec
  std::uint64_t attempts = 0;   ///< oracle runs spent
  std::uint32_t removed = 0;    ///< accepted reductions
};

/// Greedily minimize `spec`, preserving `failure` (the divergence class the
/// original run produced). A candidate counts as still-failing only when
/// its oracle verdict is CONCLUSIVE and fails with the same failure kind —
/// an inconclusive or differently-failing reduction is rejected, so the
/// artifact always reproduces the reported bug. Reduction passes: drop
/// message rules, drop internal rules, drop individual sends, clear
/// injected asserts, drop ANY single node (its rules and traffic go with
/// it; higher node ids are renumbered down to keep the id space dense).
/// `max_attempts` bounds the total oracle invocations.
ShrinkResult shrink_spec(const ProtoSpec& spec, OracleFailure failure, const OracleOptions& opt,
                         std::uint64_t max_attempts = 400);

}  // namespace lmc::dfuzz
