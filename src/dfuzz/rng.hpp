// Deterministic PRNG for the differential fuzzer.
//
// std::mt19937 is portable but the standard distributions are not: two
// library implementations may map the same engine stream to different
// bounded integers, and a fuzz corpus pinned in CI must reproduce bit-for-
// bit on every toolchain. SplitMix64 plus hand-rolled bounded draws keeps
// seed -> protocol a pure integer function of the seed everywhere.
#pragma once

#include <cstdint>

namespace lmc::dfuzz {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform draw in [0, n). n must be > 0. The modulo bias is irrelevant
  /// for fuzz-case shaping (n is always tiny against 2^64).
  std::uint64_t below(std::uint64_t n) { return next() % n; }

  /// Uniform draw in [lo, hi] inclusive.
  std::uint32_t range(std::uint32_t lo, std::uint32_t hi) {
    return lo + static_cast<std::uint32_t>(below(hi - lo + 1));
  }

  /// True with probability pct/100.
  bool chance(std::uint32_t pct) { return below(100) < pct; }

 private:
  std::uint64_t state_;
};

}  // namespace lmc::dfuzz
