#include "dfuzz/artifacts.hpp"

#include <cstdio>
#include <filesystem>
#include <stdexcept>

#include "dsl/bridge.hpp"
#include "dsl/spec.hpp"
#include "runtime/serialize.hpp"

namespace lmc::dfuzz {

namespace {

void write_file(const std::string& path, const void* p, std::size_t n) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) throw std::runtime_error("cannot write " + path);
  std::fwrite(p, 1, n, f);
  std::fclose(f);
}

}  // namespace

ArtifactPaths write_repro_artifacts(const std::string& dir, std::uint64_t seed,
                                    const ShrinkResult& shrunk, const ProtoSpec& original) {
  std::filesystem::create_directories(dir);
  const std::string base = dir + "/dfuzz_repro_seed" + std::to_string(seed);
  ArtifactPaths paths{base + ".bin", base + ".txt", base + ".lmc"};

  Writer w;
  shrunk.spec.serialize(w);
  write_file(paths.bin, w.data().data(), w.data().size());

  std::string txt = "lmc_fuzz disagreement\nseed: " + std::to_string(seed) +
                    "\nfailure: " + to_string(shrunk.report.failure) +
                    "\ndetail: " + shrunk.report.detail + "\nshrink: removed " +
                    std::to_string(shrunk.removed) + " piece(s) in " +
                    std::to_string(shrunk.attempts) + " oracle run(s)\n\nminimal protocol:\n" +
                    to_string(shrunk.spec) + "\noriginal protocol:\n" + to_string(original);
  write_file(paths.txt, txt.data(), txt.size());

  dsl::DslSpec lifted = dsl::from_proto(shrunk.spec);
  // Record what the oracle run actually observed, so `lmc_run FILE.lmc`
  // exits 0 when the repro behaves as captured (a confirmed violation is
  // the expected outcome for most shrunk disagreements, not a failure).
  lifted.expect_violation = shrunk.report.lmc_confirmed > 0;
  const std::string lmc = dsl::to_lmc_text(lifted);
  write_file(paths.lmc, lmc.data(), lmc.size());
  return paths;
}

}  // namespace lmc::dfuzz
