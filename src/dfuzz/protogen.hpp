// ProtoGen: seeded random generation of table-driven protocols over the
// existing HM/HA handler model, for differential checking of LMC against
// the global baseline.
//
// A generated node is an interpreter over a `ProtoSpec` rule table:
//  * internal rules (HA) are fire-once — a per-node bitmask of consumed
//    rules is part of the serialized state, so each node contributes at
//    most `num_states * 2^|internals|` local states;
//  * message rules (HM) are guarded on the current state and must move to a
//    strictly HIGHER state number, so message-driven progress is monotone;
//  * every send's destination, type and payload tag are fixed in the table
//    at generation time — handlers stay fully deterministic.
// Together these bounds make the induced GLOBAL state space finite: the
// reference checker terminates on every generated protocol, which is what
// lets the differential oracle demand a completed baseline run.
//
// The generated invariant is a two-state mutual-exclusion property ("no two
// distinct nodes simultaneously in states A and B"), with an optional
// pairwise projection whose conflict predicate matches holds() exactly —
// so the same generated protocol exercises both the LMC-GEN and LMC-OPT
// system-state builders.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "mc/invariant.hpp"
#include "mc/symmetry/role_group.hpp"
#include "runtime/state_machine.hpp"

namespace lmc::dfuzz {

/// One message emission baked into a rule. `tag` is an arbitrary payload
/// discriminator so distinct rules produce distinct message content.
struct SendAction {
  NodeId dst = 0;
  std::uint32_t type = 0;
  std::uint32_t tag = 0;
  bool operator==(const SendAction&) const = default;
};

/// Effect of a rule firing: sends, then an optional injected local-assert
/// failure (the handler sent real traffic BEFORE the assert tripped — the
/// interleaving class behind PR 2's I+ regression), then the state change.
struct RuleAction {
  std::uint32_t goto_state = 0;
  std::vector<SendAction> sends;
  bool fail_assert = false;
  bool operator==(const RuleAction&) const = default;
};

/// HA rule: fires at most once per node, only while the node sits in
/// `guard_state`. May move the state anywhere (fire-once keeps it bounded).
struct InternalRule {
  NodeId node = 0;
  std::uint32_t guard_state = 0;
  RuleAction action;
  bool operator==(const InternalRule&) const = default;
};

/// HM rule: applies when `node` receives a message of `type` while in
/// `guard_state`; action.goto_state must be strictly greater than the
/// guard (monotone progress). Messages matching no rule are dropped.
struct MsgRule {
  NodeId node = 0;
  std::uint32_t type = 0;
  std::uint32_t guard_state = 0;
  RuleAction action;
  bool operator==(const MsgRule&) const = default;
};

/// "No two distinct nodes in states A and B at once" (A == B allowed:
/// at-most-one-node-in-A). Both states are >= 1 so the all-zero initial
/// system state never violates trivially.
struct InvariantSpec {
  std::uint32_t state_a = 1;
  std::uint32_t state_b = 1;
  bool use_projection = false;  ///< expose the pairwise projection (OPT path)
  bool operator==(const InvariantSpec&) const = default;
};

struct ProtoSpec {
  std::uint64_t seed = 0;  ///< generator seed, kept for repro artifacts
  std::uint32_t num_nodes = 2;
  std::uint32_t num_states = 2;
  std::uint32_t num_msg_types = 1;
  std::vector<InternalRule> internals;
  std::vector<MsgRule> msg_rules;
  InvariantSpec invariant;

  bool operator==(const ProtoSpec&) const = default;

  void serialize(Writer& w) const;
  static ProtoSpec deserialize(Reader& r);
};

/// Structural validity: ids in range, message rules monotone, rule count
/// fits the fire-once bitmask. Returns an empty string when valid.
std::string validate_spec(const ProtoSpec& spec);

/// Human-readable rendering for repro artifacts and failure messages.
std::string to_string(const ProtoSpec& spec);

/// Drop message rules shadowed by an earlier rule with the same
/// (node, type, guard): GenNode dispatch is first-match, so a shadowed rule
/// can never fire and the pruned spec executes byte-identically (internal
/// rules are untouched — each owns its own fire-once bit). The .lmc bridge
/// canonicalizes through this, because the DSL rejects shadowed handlers
/// outright [DSL04].
ProtoSpec drop_shadowed_rules(const ProtoSpec& spec);

/// Generation bounds. Defaults keep a single protocol's reachable global
/// state space in the low thousands — a differential run is milliseconds.
struct GenLimits {
  std::uint32_t max_nodes = 4;          ///< >= 2
  std::uint32_t max_states = 4;         ///< >= 2
  std::uint32_t max_msg_types = 3;      ///< >= 1
  std::uint32_t max_internal_rules = 5;
  std::uint32_t max_msg_rules = 6;
  std::uint32_t max_sends = 2;          ///< per rule
  std::uint32_t assert_pct = 4;         ///< chance a rule injects a failed assert
  std::uint32_t projection_pct = 50;    ///< chance the invariant exposes a projection
};

/// Pure function of (seed, limits): the same seed regenerates the same
/// protocol on any platform/toolchain.
ProtoSpec generate_spec(std::uint64_t seed, const GenLimits& lim = {});

/// Symmetric-roles generator (separate from the FROZEN generate_spec — the
/// 53-seed corpus must keep regenerating byte-identically): a few driver
/// nodes plus one replicated class of >= 2 members with identical rule
/// tables. Driver broadcasts into the class share one payload tag per
/// surface send (class members then reach byte-identical states); member
/// replies to drivers carry per-member tags (the driver's digest keeps
/// senders apart — no history aliasing). Members never message each other.
/// The invariant never projects, so the checker's GEN path runs and
/// symmetry reduction can activate.
ProtoSpec generate_symmetric_spec(std::uint64_t seed, const GenLimits& lim = {});

/// Interpreter node. State = (current state, fired-internal-rule bitmask,
/// consumed-message digest). The digest — an order-insensitive XOR over the
/// tags of the messages a rule actually consumed — makes the delivery
/// history a function of the state blob: two traversal paths merge only
/// when they consumed the same message SET (reorderings still merge, so
/// LMC's predecessor merging is exercised), never with differing
/// histories. That keeps generated protocols inside the local model's
/// documented completeness envelope (DESIGN.md "Delivery history": the
/// first path's history is inherited by the deduplicated state).
class GenNode final : public StateMachine {
 public:
  GenNode(NodeId self, std::shared_ptr<const ProtoSpec> spec)
      : self_(self), spec_(std::move(spec)) {}

  void handle_message(const Message& m, Context& ctx) override;
  std::vector<InternalEvent> enabled_internal_events() const override;
  void handle_internal(const InternalEvent& ev, Context& ctx) override;
  void serialize(Writer& w) const override;
  void deserialize(Reader& r) override;

 private:
  void apply(const RuleAction& a, Context& ctx);

  NodeId self_;
  std::shared_ptr<const ProtoSpec> spec_;
  std::uint32_t state_ = 0;
  std::uint32_t fired_ = 0;   ///< bitmask over self_'s OWN internal rules, in table order
  std::uint64_t digest_ = 0;  ///< XOR of mix64(tag) per consumed message
};

/// The generated mutual-exclusion invariant (see InvariantSpec).
class GenInvariant final : public Invariant {
 public:
  explicit GenInvariant(std::shared_ptr<const ProtoSpec> spec) : spec_(std::move(spec)) {}

  std::string name() const override;
  bool holds(const SystemConfig& cfg, const SystemStateView& sys) const override;
  /// Mutual exclusion scans unordered node pairs — invariant under any node
  /// permutation, so any class decomposition is admissible.
  bool symmetric_under(const std::vector<std::vector<NodeId>>&) const override { return true; }
  bool has_projection() const override { return spec_->invariant.use_projection; }
  Projection project(const SystemConfig& cfg, NodeId n, const Blob& state) const override;
  bool projections_conflict(const Projection& a, const Projection& b) const override;

 private:
  std::shared_ptr<const ProtoSpec> spec_;
};

/// A spec made runnable. Owns the spec; `cfg` and `invariant` stay valid as
/// long as this object lives (the checkers hold references into it).
struct GeneratedProtocol {
  std::shared_ptr<const ProtoSpec> spec;
  SystemConfig cfg;
  std::unique_ptr<GenInvariant> invariant;
};

/// Throws std::invalid_argument when validate_spec rejects the spec.
/// Fills `cfg.symmetric_roles` via infer_symmetric_roles so
/// `SymmetryMode::kAuto` works on generated protocols out of the box.
GeneratedProtocol instantiate(const ProtoSpec& spec);

/// Maximal classes of nodes whose rule tables are automorphic under id
/// swaps (tags ignored; see symmetry::infer_classes).
std::vector<std::vector<NodeId>> infer_symmetric_roles(const ProtoSpec& spec);

/// Decode the `state` field of a serialized GenNode.
std::uint32_t gen_state_of(const Blob& state);

}  // namespace lmc::dfuzz
