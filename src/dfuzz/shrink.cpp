#include "dfuzz/shrink.hpp"

#include <utility>

namespace lmc::dfuzz {

namespace {

/// Remove node `gone` entirely: every rule it owns and every send addressed
/// to it are dropped, and all higher node ids (rule owners and send
/// destinations) shift down by one so the id space stays dense. ANY node can
/// be removed, not just the highest — a divergence carried by a middle node
/// must not survive shrinking merely because a higher-numbered bystander is
/// load-bearing.
void drop_node(ProtoSpec& s, NodeId gone) {
  s.num_nodes -= 1;
  std::erase_if(s.internals, [gone](const InternalRule& r) { return r.node == gone; });
  std::erase_if(s.msg_rules, [gone](const MsgRule& r) { return r.node == gone; });
  auto scrub = [gone](RuleAction& a) {
    std::erase_if(a.sends, [gone](const SendAction& sa) { return sa.dst == gone; });
    for (SendAction& sa : a.sends)
      if (sa.dst > gone) --sa.dst;
  };
  for (InternalRule& r : s.internals) {
    if (r.node > gone) --r.node;
    scrub(r.action);
  }
  for (MsgRule& r : s.msg_rules) {
    if (r.node > gone) --r.node;
    scrub(r.action);
  }
}

}  // namespace

ShrinkResult shrink_spec(const ProtoSpec& spec, OracleFailure failure, const OracleOptions& opt,
                         std::uint64_t max_attempts) {
  ShrinkResult out;
  out.spec = spec;
  DiffOracle oracle(opt);

  auto still_fails = [&](const ProtoSpec& candidate) {
    if (out.attempts >= max_attempts) return false;
    if (!validate_spec(candidate).empty()) return false;
    ++out.attempts;
    GeneratedProtocol p = instantiate(candidate);
    OracleReport r = oracle.check(p.cfg, p.invariant.get());
    if (!r.conclusive || r.ok || r.failure != failure) return false;
    out.report = std::move(r);
    return true;
  };

  bool progress = true;
  while (progress && out.attempts < max_attempts) {
    progress = false;

    for (std::size_t i = 0; i < out.spec.msg_rules.size();) {
      ProtoSpec cand = out.spec;
      cand.msg_rules.erase(cand.msg_rules.begin() + static_cast<std::ptrdiff_t>(i));
      if (still_fails(cand)) {
        out.spec = std::move(cand);
        ++out.removed;
        progress = true;
      } else {
        ++i;
      }
    }

    for (std::size_t i = 0; i < out.spec.internals.size();) {
      ProtoSpec cand = out.spec;
      cand.internals.erase(cand.internals.begin() + static_cast<std::ptrdiff_t>(i));
      if (still_fails(cand)) {
        out.spec = std::move(cand);
        ++out.removed;
        progress = true;
      } else {
        ++i;
      }
    }

    auto shrink_sends = [&](auto get_rules) {
      for (std::size_t i = 0; i < get_rules(out.spec).size(); ++i) {
        for (std::size_t s = 0; s < get_rules(out.spec)[i].action.sends.size();) {
          ProtoSpec cand = out.spec;
          auto& sends = get_rules(cand)[i].action.sends;
          sends.erase(sends.begin() + static_cast<std::ptrdiff_t>(s));
          if (still_fails(cand)) {
            out.spec = std::move(cand);
            ++out.removed;
            progress = true;
          } else {
            ++s;
          }
        }
      }
    };
    shrink_sends([](ProtoSpec& s) -> auto& { return s.internals; });
    shrink_sends([](ProtoSpec& s) -> auto& { return s.msg_rules; });

    auto clear_asserts = [&](auto get_rules) {
      for (std::size_t i = 0; i < get_rules(out.spec).size(); ++i) {
        if (!get_rules(out.spec)[i].action.fail_assert) continue;
        ProtoSpec cand = out.spec;
        get_rules(cand)[i].action.fail_assert = false;
        if (still_fails(cand)) {
          out.spec = std::move(cand);
          ++out.removed;
          progress = true;
        }
      }
    };
    clear_asserts([](ProtoSpec& s) -> auto& { return s.internals; });
    clear_asserts([](ProtoSpec& s) -> auto& { return s.msg_rules; });

    // Try removing each node in turn (not break-at-first-failure: node 0
    // being load-bearing must not shield node 3 from removal). A successful
    // drop retries the SAME index — it now names the next candidate.
    for (NodeId n = 0; out.spec.num_nodes > 2 && n < out.spec.num_nodes;) {
      ProtoSpec cand = out.spec;
      drop_node(cand, n);
      if (still_fails(cand)) {
        out.spec = std::move(cand);
        ++out.removed;
        progress = true;
      } else {
        ++n;
      }
    }
  }

  // Pin the report to the final spec (still_fails stored it on each accept;
  // if nothing ever shrank, run the oracle once so the report is filled).
  if (out.removed == 0) {
    GeneratedProtocol p = instantiate(out.spec);
    out.report = DiffOracle(opt).check(p.cfg, p.invariant.get());
  }
  return out;
}

}  // namespace lmc::dfuzz
