#include "dfuzz/protogen.hpp"

#include <sstream>
#include <stdexcept>

#include "dfuzz/rng.hpp"
#include "runtime/hash.hpp"

namespace lmc::dfuzz {

// --- spec (de)serialization ------------------------------------------------

namespace {

void write_action(Writer& w, const RuleAction& a) {
  w.u32(a.goto_state);
  w.u32(static_cast<std::uint32_t>(a.sends.size()));
  for (const SendAction& s : a.sends) {
    w.u32(s.dst);
    w.u32(s.type);
    w.u32(s.tag);
  }
  w.b(a.fail_assert);
}

RuleAction read_action(Reader& r) {
  RuleAction a;
  a.goto_state = r.u32();
  std::uint32_t n = r.u32();
  a.sends.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    SendAction s;
    s.dst = r.u32();
    s.type = r.u32();
    s.tag = r.u32();
    a.sends.push_back(s);
  }
  a.fail_assert = r.b();
  return a;
}

}  // namespace

void ProtoSpec::serialize(Writer& w) const {
  w.u64(seed);
  w.u32(num_nodes);
  w.u32(num_states);
  w.u32(num_msg_types);
  w.u32(static_cast<std::uint32_t>(internals.size()));
  for (const InternalRule& r : internals) {
    w.u32(r.node);
    w.u32(r.guard_state);
    write_action(w, r.action);
  }
  w.u32(static_cast<std::uint32_t>(msg_rules.size()));
  for (const MsgRule& r : msg_rules) {
    w.u32(r.node);
    w.u32(r.type);
    w.u32(r.guard_state);
    write_action(w, r.action);
  }
  w.u32(invariant.state_a);
  w.u32(invariant.state_b);
  w.b(invariant.use_projection);
}

ProtoSpec ProtoSpec::deserialize(Reader& r) {
  ProtoSpec s;
  s.seed = r.u64();
  s.num_nodes = r.u32();
  s.num_states = r.u32();
  s.num_msg_types = r.u32();
  std::uint32_t ni = r.u32();
  s.internals.reserve(ni);
  for (std::uint32_t i = 0; i < ni; ++i) {
    InternalRule ir;
    ir.node = r.u32();
    ir.guard_state = r.u32();
    ir.action = read_action(r);
    s.internals.push_back(std::move(ir));
  }
  std::uint32_t nm = r.u32();
  s.msg_rules.reserve(nm);
  for (std::uint32_t i = 0; i < nm; ++i) {
    MsgRule mr;
    mr.node = r.u32();
    mr.type = r.u32();
    mr.guard_state = r.u32();
    mr.action = read_action(r);
    s.msg_rules.push_back(std::move(mr));
  }
  s.invariant.state_a = r.u32();
  s.invariant.state_b = r.u32();
  s.invariant.use_projection = r.b();
  return s;
}

std::string validate_spec(const ProtoSpec& spec) {
  if (spec.num_nodes < 2) return "num_nodes < 2";
  if (spec.num_states < 2) return "num_states < 2";
  if (spec.num_msg_types < 1) return "num_msg_types < 1";
  if (spec.internals.size() > 32) return "more than 32 internal rules (fired bitmask)";
  auto check_action = [&](const RuleAction& a) -> std::string {
    if (a.goto_state >= spec.num_states) return "goto_state out of range";
    for (const SendAction& s : a.sends) {
      if (s.dst >= spec.num_nodes) return "send dst out of range";
      if (s.type >= spec.num_msg_types) return "send type out of range";
    }
    return "";
  };
  for (const InternalRule& r : spec.internals) {
    if (r.node >= spec.num_nodes) return "internal rule node out of range";
    if (r.guard_state >= spec.num_states) return "internal guard out of range";
    if (std::string e = check_action(r.action); !e.empty()) return "internal rule: " + e;
  }
  for (const MsgRule& r : spec.msg_rules) {
    if (r.node >= spec.num_nodes) return "msg rule node out of range";
    if (r.type >= spec.num_msg_types) return "msg rule type out of range";
    if (r.guard_state >= spec.num_states) return "msg guard out of range";
    if (std::string e = check_action(r.action); !e.empty()) return "msg rule: " + e;
    // The monotonicity that bounds message-driven progress (header comment).
    if (r.action.goto_state <= r.guard_state) return "msg rule not monotone";
  }
  const InvariantSpec& iv = spec.invariant;
  if (iv.state_a < 1 || iv.state_a >= spec.num_states) return "invariant state_a out of range";
  if (iv.state_b < 1 || iv.state_b >= spec.num_states) return "invariant state_b out of range";
  return "";
}

ProtoSpec drop_shadowed_rules(const ProtoSpec& spec) {
  ProtoSpec out = spec;
  out.msg_rules.clear();
  for (const MsgRule& r : spec.msg_rules) {
    bool shadowed = false;
    for (const MsgRule& kept : out.msg_rules)
      if (kept.node == r.node && kept.type == r.type && kept.guard_state == r.guard_state) {
        shadowed = true;
        break;
      }
    if (!shadowed) out.msg_rules.push_back(r);
  }
  return out;
}

std::string to_string(const ProtoSpec& spec) {
  std::ostringstream os;
  os << "ProtoSpec seed=" << spec.seed << " nodes=" << spec.num_nodes
     << " states=" << spec.num_states << " msg_types=" << spec.num_msg_types << "\n";
  auto action = [&](const RuleAction& a) {
    os << "-> s" << a.goto_state;
    for (const SendAction& s : a.sends)
      os << " send(dst=" << s.dst << ", type=" << s.type << ", tag=" << s.tag << ")";
    if (a.fail_assert) os << " ASSERT-FAIL";
    os << "\n";
  };
  for (std::size_t i = 0; i < spec.internals.size(); ++i) {
    const InternalRule& r = spec.internals[i];
    os << "  HA[" << i << "] node " << r.node << " @s" << r.guard_state << " (once) ";
    action(r.action);
  }
  for (std::size_t i = 0; i < spec.msg_rules.size(); ++i) {
    const MsgRule& r = spec.msg_rules[i];
    os << "  HM[" << i << "] node " << r.node << " @s" << r.guard_state << " type " << r.type
       << " ";
    action(r.action);
  }
  os << "  invariant: !(node_i in s" << spec.invariant.state_a << " && node_j in s"
     << spec.invariant.state_b << ", i != j)"
     << (spec.invariant.use_projection ? " [projected]" : "") << "\n";
  return std::move(os).str();
}

// --- generation ------------------------------------------------------------

ProtoSpec generate_spec(std::uint64_t seed, const GenLimits& lim) {
  Rng rng(seed);
  ProtoSpec spec;
  spec.seed = seed;
  spec.num_nodes = rng.range(2, lim.max_nodes < 2 ? 2 : lim.max_nodes);
  spec.num_states = rng.range(2, lim.max_states < 2 ? 2 : lim.max_states);
  spec.num_msg_types = rng.range(1, lim.max_msg_types < 1 ? 1 : lim.max_msg_types);

  std::uint32_t tag = 0;
  auto gen_action = [&](std::uint32_t min_goto) {
    RuleAction a;
    a.goto_state = rng.range(min_goto, spec.num_states - 1);
    std::uint32_t sends = rng.range(0, lim.max_sends);
    for (std::uint32_t s = 0; s < sends; ++s) {
      SendAction sa;
      sa.dst = rng.range(0, spec.num_nodes - 1);
      sa.type = rng.range(0, spec.num_msg_types - 1);
      sa.tag = tag++;  // distinct payloads: rules never alias each other's traffic
      a.sends.push_back(sa);
    }
    a.fail_assert = rng.chance(lim.assert_pct);
    return a;
  };

  // At least one internal rule per protocol, and the first one guards on
  // the initial state: otherwise (empty network, nothing enabled) the whole
  // run is a trivial no-op and the seed is wasted.
  std::uint32_t n_int = rng.range(1, lim.max_internal_rules < 1 ? 1 : lim.max_internal_rules);
  for (std::uint32_t i = 0; i < n_int; ++i) {
    InternalRule r;
    r.node = rng.range(0, spec.num_nodes - 1);
    r.guard_state = i == 0 ? 0 : rng.range(0, spec.num_states - 1);
    // Non-decreasing goto: together with the message rules' strict
    // progress this makes the node state monotone along any chain, so no
    // rule ever executes twice in one run and no message content is ever
    // regenerated — generated protocols stay inside the model's
    // completeness envelope (the paper's duplicate-message limit of 0;
    // DESIGN.md "Delivery history"). A backward goto is legal for the
    // interpreter but produces protocols the local checker is documented
    // to under-approximate, which the differential oracle would flag.
    r.action = gen_action(r.guard_state);
    spec.internals.push_back(std::move(r));
  }

  std::uint32_t n_msg = rng.range(0, lim.max_msg_rules);
  for (std::uint32_t i = 0; i < n_msg; ++i) {
    MsgRule r;
    r.node = rng.range(0, spec.num_nodes - 1);
    r.type = rng.range(0, spec.num_msg_types - 1);
    r.guard_state = rng.range(0, spec.num_states - 2);
    r.action = gen_action(r.guard_state + 1);  // strictly up: bounded progress
    spec.msg_rules.push_back(std::move(r));
  }

  spec.invariant.state_a = rng.range(1, spec.num_states - 1);
  spec.invariant.state_b = rng.range(1, spec.num_states - 1);
  spec.invariant.use_projection = rng.chance(lim.projection_pct);
  return spec;
}

ProtoSpec generate_symmetric_spec(std::uint64_t seed, const GenLimits& lim) {
  Rng rng(seed);
  ProtoSpec spec;
  spec.seed = seed;
  // Partition the nodes into drivers [0, drivers) and one replicated class
  // [drivers, num_nodes). At least one driver, at least two members.
  const std::uint32_t max_n = lim.max_nodes < 3 ? 3 : lim.max_nodes;
  const std::uint32_t drivers = rng.range(1, max_n - 2);
  const std::uint32_t members = rng.range(2, max_n - drivers);
  spec.num_nodes = drivers + members;
  spec.num_states = rng.range(2, lim.max_states < 2 ? 2 : lim.max_states);
  spec.num_msg_types = rng.range(1, lim.max_msg_types < 1 ? 1 : lim.max_msg_types);

  std::uint32_t tag = 0;

  // Driver internal rules. The first one always guards the initial state
  // and broadcasts into the class (otherwise nothing reaches the members
  // and the seed is wasted). A broadcast shares ONE tag across the member
  // copies — contents stay distinct via dst, and every member's consumed
  // digest matches, which is what lets their blobs coincide.
  const std::uint32_t n_drv =
      rng.range(1, lim.max_internal_rules < 1 ? 1 : lim.max_internal_rules);
  for (std::uint32_t i = 0; i < n_drv; ++i) {
    InternalRule r;
    r.node = static_cast<NodeId>(rng.range(0, drivers - 1));
    r.guard_state = i == 0 ? 0 : rng.range(0, spec.num_states - 1);
    r.action.goto_state = rng.range(r.guard_state, spec.num_states - 1);
    const std::uint32_t sends = i == 0 ? 1 : rng.range(0, lim.max_sends);
    for (std::uint32_t s = 0; s < sends; ++s) {
      const std::uint32_t type = rng.range(0, spec.num_msg_types - 1);
      if (i == 0 || rng.chance(70)) {
        const std::uint32_t t = tag++;
        for (std::uint32_t m = drivers; m < spec.num_nodes; ++m)
          r.action.sends.push_back(SendAction{static_cast<NodeId>(m), type, t});
      } else {
        r.action.sends.push_back(
            SendAction{static_cast<NodeId>(rng.range(0, drivers - 1)), type, tag++});
      }
    }
    r.action.fail_assert = i != 0 && rng.chance(lim.assert_pct);
    spec.internals.push_back(std::move(r));
  }

  // Replicated member rules: each template is stamped out identically for
  // every member (template-major, so local rule positions line up). Replies
  // to drivers carry PER-MEMBER tags: behaviour is still symmetric (tags
  // never guard anything) but the receiving driver's digest distinguishes
  // senders, keeping the delivery history a function of the driver's blob.
  const std::uint32_t n_msg_tpl = rng.range(1, 2);
  for (std::uint32_t t = 0; t < n_msg_tpl; ++t) {
    const std::uint32_t type = t == 0 ? spec.internals[0].action.sends[0].type
                                      : rng.range(0, spec.num_msg_types - 1);
    const std::uint32_t guard = t == 0 ? 0 : rng.range(0, spec.num_states - 2);
    const std::uint32_t target = rng.range(guard + 1, spec.num_states - 1);
    const std::uint32_t replies = rng.range(0, 1);
    const NodeId reply_dst = static_cast<NodeId>(rng.range(0, drivers - 1));
    const std::uint32_t reply_type = rng.range(0, spec.num_msg_types - 1);
    const bool fail = rng.chance(lim.assert_pct);
    for (std::uint32_t m = drivers; m < spec.num_nodes; ++m) {
      MsgRule r;
      r.node = static_cast<NodeId>(m);
      r.type = type;
      r.guard_state = guard;
      r.action.goto_state = target;
      if (replies != 0)
        r.action.sends.push_back(SendAction{reply_dst, reply_type, tag + (m - drivers)});
      r.action.fail_assert = fail;
      spec.msg_rules.push_back(std::move(r));
    }
    if (replies != 0) tag += members;
  }
  if (rng.chance(50)) {
    // One replicated fire-once internal rule for the class.
    const std::uint32_t guard = rng.range(0, spec.num_states - 1);
    const std::uint32_t target = rng.range(guard, spec.num_states - 1);
    const std::uint32_t pokes = rng.range(0, 1);
    const NodeId poke_dst = static_cast<NodeId>(rng.range(0, drivers - 1));
    const std::uint32_t poke_type = rng.range(0, spec.num_msg_types - 1);
    for (std::uint32_t m = drivers; m < spec.num_nodes; ++m) {
      InternalRule r;
      r.node = static_cast<NodeId>(m);
      r.guard_state = guard;
      r.action.goto_state = target;
      if (pokes != 0)
        r.action.sends.push_back(SendAction{poke_dst, poke_type, tag + (m - drivers)});
      spec.internals.push_back(std::move(r));
    }
    if (pokes != 0) tag += members;
  }

  spec.invariant.state_a = rng.range(1, spec.num_states - 1);
  spec.invariant.state_b = rng.range(1, spec.num_states - 1);
  // Never project: the GEN system-state path is the one symmetry reduction
  // hooks into (projection combos are arrangement-dependent).
  spec.invariant.use_projection = false;
  return spec;
}

// --- interpreter node ------------------------------------------------------

void GenNode::apply(const RuleAction& a, Context& ctx) {
  for (const SendAction& s : a.sends) {
    Writer w;
    w.u32(s.tag);
    ctx.send(s.dst, s.type, std::move(w).take());
  }
  // Sends precede the assert: the messages are real traffic even when the
  // successor state is discarded (the order Fig. 9's addNextState pins).
  if (a.fail_assert) ctx.local_assert(false, "dfuzz: injected assert");
  state_ = a.goto_state;
}

void GenNode::handle_message(const Message& m, Context& ctx) {
  for (const MsgRule& r : spec_->msg_rules) {
    if (r.node != self_ || r.type != m.type || r.guard_state != state_) continue;
    // Fold the consumed tag into the digest BEFORE applying: a matched
    // delivery always changes the blob, so the LMC history entry this
    // execution creates corresponds 1:1 to a digest update. No-op drops
    // (below) are excluded — they create no history entry either.
    Reader pr(m.payload);
    digest_ ^= mix64(static_cast<std::uint64_t>(pr.u32()) + 0x6d4f);
    apply(r.action, ctx);
    return;
  }
  // No matching rule: the delivery is a silent no-op. I+ offers every
  // message to every state of its destination, so this must not assert.
}

std::vector<InternalEvent> GenNode::enabled_internal_events() const {
  // Event kind = GLOBAL rule index (event identity must be unambiguous
  // across nodes); the fired_ bit = the rule's position among self_'s OWN
  // rules, so mirrored nodes whose rules sit at different global offsets
  // still produce identical blobs (symmetry-class alignment).
  std::vector<InternalEvent> evs;
  std::uint32_t local = 0;
  for (std::size_t i = 0; i < spec_->internals.size(); ++i) {
    const InternalRule& r = spec_->internals[i];
    if (r.node != self_) continue;
    const std::uint32_t bit = local++;
    if (r.guard_state != state_) continue;
    if (fired_ & (1u << bit)) continue;
    evs.push_back(InternalEvent{static_cast<std::uint32_t>(i) + 1, {}});
  }
  return evs;
}

void GenNode::handle_internal(const InternalEvent& ev, Context& ctx) {
  const std::size_t idx = ev.kind - 1;
  if (idx >= spec_->internals.size()) {
    ctx.local_assert(false, "dfuzz: unknown internal rule");
    return;
  }
  const InternalRule& r = spec_->internals[idx];
  std::uint32_t bit = 0;
  for (std::size_t k = 0; k < idx; ++k)
    if (spec_->internals[k].node == self_) ++bit;
  if (r.node != self_ || r.guard_state != state_ || (fired_ & (1u << bit)) != 0) {
    ctx.local_assert(false, "dfuzz: internal rule not enabled");
    return;
  }
  fired_ |= 1u << bit;
  apply(r.action, ctx);
}

void GenNode::serialize(Writer& w) const {
  w.u32(state_);
  w.u32(fired_);
  w.u64(digest_);
}

void GenNode::deserialize(Reader& r) {
  state_ = r.u32();
  fired_ = r.u32();
  digest_ = r.u64();
}

std::uint32_t gen_state_of(const Blob& state) {
  Reader r(state);
  return r.u32();
}

// --- invariant -------------------------------------------------------------

std::string GenInvariant::name() const {
  return "dfuzz.mutex_s" + std::to_string(spec_->invariant.state_a) + "_s" +
         std::to_string(spec_->invariant.state_b);
}

bool GenInvariant::holds(const SystemConfig&, const SystemStateView& sys) const {
  const std::uint32_t a = spec_->invariant.state_a;
  const std::uint32_t b = spec_->invariant.state_b;
  for (std::size_t i = 0; i < sys.size(); ++i) {
    const std::uint32_t si = gen_state_of(*sys[i]);
    if (si != a && si != b) continue;
    for (std::size_t j = i + 1; j < sys.size(); ++j) {
      const std::uint32_t sj = gen_state_of(*sys[j]);
      if ((si == a && sj == b) || (sj == a && si == b)) return false;
    }
  }
  return true;
}

Projection GenInvariant::project(const SystemConfig&, NodeId, const Blob& state) const {
  // key 0: the node is in state A; key 1: in state B. Unmapped otherwise —
  // such states can never join a violation, which is what LMC-OPT exploits.
  const std::uint32_t s = gen_state_of(state);
  Projection p;
  if (s == spec_->invariant.state_a) p.emplace_back(0, 1);
  if (s == spec_->invariant.state_b) p.emplace_back(1, 1);
  return p;
}

bool GenInvariant::projections_conflict(const Projection& a, const Projection& b) const {
  auto has = [](const Projection& p, std::uint64_t key) {
    for (const auto& [k, v] : p)
      if (k == key) return v != 0;
    return false;
  };
  // Two DISTINCT nodes (the pair scan never pairs a state with itself on
  // the same node) where one sits in A and the other in B — exactly the
  // violation holds() reports.
  return (has(a, 0) && has(b, 1)) || (has(b, 0) && has(a, 1));
}

// --- instantiation ---------------------------------------------------------

std::vector<std::vector<NodeId>> infer_symmetric_roles(const ProtoSpec& spec) {
  std::vector<symmetry::NodeSig> sigs(spec.num_nodes);
  auto sig_action = [](symmetry::RuleSig& sig, const RuleAction& a) {
    sig.goto_state = a.goto_state;
    sig.fail_assert = a.fail_assert;
    for (const SendAction& s : a.sends)
      sig.sends.push_back(symmetry::SigSend{/*to_sender=*/false, s.dst, s.type});
  };
  for (const InternalRule& r : spec.internals) {
    symmetry::RuleSig sig;
    sig.guard = r.guard_state;
    sig_action(sig, r.action);
    sigs[r.node].internals.push_back(std::move(sig));
  }
  for (const MsgRule& r : spec.msg_rules) {
    symmetry::RuleSig sig;
    sig.trigger = r.type;
    sig.guard = r.guard_state;
    sig_action(sig, r.action);
    sigs[r.node].msgs.push_back(std::move(sig));
  }
  return symmetry::infer_classes(sigs);
}

// Footprint extraction, the exact mirror of dsl::extract_footprints: every
// generated rule is a guarded state transition (table flavor); the internal
// kind convention is global rule index + 1; message types with no rule at a
// node are null handlers (guaranteed no-op deliveries).
std::shared_ptr<const ProtocolFootprints> extract_footprints(const ProtoSpec& spec) {
  auto fp = std::make_shared<ProtocolFootprints>();
  fp->nodes.resize(spec.num_nodes);
  for (NodeId n = 0; n < spec.num_nodes; ++n) {
    NodeFootprints& nf = fp->nodes[n];
    nf.node = n;
    nf.complete = true;
    for (std::size_t i = 0; i < spec.internals.size(); ++i) {
      const InternalRule& r = spec.internals[i];
      if (r.node != n) continue;
      RuleFootprint rf;
      rf.is_message = false;
      rf.key = static_cast<std::uint32_t>(i) + 1;
      rf.label = "internal#" + std::to_string(i);
      rf.guard_states.push_back(r.guard_state);
      rf.goto_states.push_back(r.action.goto_state);
      rf.fire_once = true;
      rf.sends = !r.action.sends.empty();
      rf.asserts = r.action.fail_assert;
      nf.rules.push_back(std::move(rf));
    }
    for (std::uint32_t t = 0; t < spec.num_msg_types; ++t) {
      bool any = false;
      for (const MsgRule& r : spec.msg_rules) {
        if (r.node != n || r.type != t) continue;
        any = true;
        RuleFootprint rf;
        rf.is_message = true;
        rf.key = t;
        rf.label = "msg#" + std::to_string(t);
        rf.guard_states.push_back(r.guard_state);
        rf.goto_states.push_back(r.action.goto_state);
        rf.sends = !r.action.sends.empty();
        rf.asserts = r.action.fail_assert;
        nf.rules.push_back(std::move(rf));
      }
      if (!any) {
        RuleFootprint rf;
        rf.is_message = true;
        rf.key = t;
        rf.label = "msg#" + std::to_string(t);
        nf.rules.push_back(std::move(rf));
      }
    }
  }
  return fp;
}

GeneratedProtocol instantiate(const ProtoSpec& spec) {
  if (std::string err = validate_spec(spec); !err.empty())
    throw std::invalid_argument("dfuzz: invalid ProtoSpec: " + err);
  GeneratedProtocol p;
  p.spec = std::make_shared<const ProtoSpec>(spec);
  p.cfg.num_nodes = spec.num_nodes;
  p.cfg.symmetric_roles = infer_symmetric_roles(spec);
  p.cfg.footprints = extract_footprints(spec);
  std::shared_ptr<const ProtoSpec> shared = p.spec;
  p.cfg.factory = [shared](NodeId self, std::uint32_t) {
    return std::make_unique<GenNode>(self, shared);
  };
  p.invariant = std::make_unique<GenInvariant>(p.spec);
  return p;
}

}  // namespace lmc::dfuzz
