// Cross-restart transition cache (online warm start).
//
// Online checking restarts the local model checker from a fresh live
// snapshot every period. Consecutive snapshots change slowly, so the
// closures those restarts explore overlap heavily — and exec_message /
// exec_internal are deterministic functions of (event, serialized state).
// Memoizing their results by (event hash, state hash) lets a warm restart
// skip every handler execution any earlier period already performed while
// keeping the exploration bit-identical to a cold restart: same node
// states, same combinations, same soundness verdicts, same bugs — only the
// duplicated handler work disappears (counted in stats.warm_pairs_skipped).
// Under a wall-clock budget the exploration ORDER is still identical; the
// warm run just gets further per period, because replaying a pair is much
// cheaper than executing it — it can only ever cover more, never less.
//
// Why memoize instead of merging snapshots into one persistent checker
// (LocalModelChecker::run_warm)? The merge unions the snapshots' closures:
// every epoch's messages become deliverable to every epoch's states, a
// cross-product no cold restart pays — measured ~2-4x MORE transitions than
// restarting per snapshot on the §5.5 workload. The cache keeps each
// period's search space exactly the cold one and removes only true re-work.
//
// The map is sharded 16 ways by key hash so the work-stealing phase-1
// workers can `peek()` concurrently with the applier's authoritative
// `lookup()`/`insert()` without a single hot mutex (DESIGN.md §12). Hit and
// miss counters are atomics bumped ONLY by lookup() — peek() is counter-free
// speculation, so the counters stay exactly what a single-threaded run
// reports.
//
// The cache serializes with the same discipline as checkpoints (magic,
// version, canonical entry order, trailing whole-file checksum, atomic
// write), so warm starts can survive process restarts.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

#include "runtime/hash.hpp"
#include "runtime/state_machine.hpp"

namespace lmc {

inline constexpr char kExecCacheMagic[8] = {'L', 'M', 'C', 'E', 'X', 'E', 'C', '\n'};
inline constexpr std::uint32_t kExecCacheVersion = 1;

class ExecCache {
 public:
  /// Cap on total stored entries across both generations (see below).
  static constexpr std::size_t kDefaultMaxEntries = std::size_t{1} << 21;

  explicit ExecCache(std::size_t max_entries = kDefaultMaxEntries)
      : max_entries_(max_entries) {}

  /// True (and fills `out`) if (ev, state) was executed before. Thread-safe.
  /// Bumps the hit/miss counters — the applier's authoritative path.
  bool lookup(Hash64 ev, Hash64 state, ExecResult& out) const;

  /// Presence check WITHOUT counter effects or result extraction: the
  /// speculative worker-side probe. A true return may go stale by the time
  /// the applier consumes (generation rotation) — the applier re-executes
  /// in that case; a false return is always safe (the worker executed).
  bool peek(Hash64 ev, Hash64 state) const;

  void insert(Hash64 ev, Hash64 state, const ExecResult& r);

  std::size_t size() const;
  std::uint64_t hits() const;    ///< successful lookups since construction/load
  std::uint64_t misses() const;  ///< failed lookups

  /// Shard a (event, state) pair lands in — exposed so the profiler can
  /// attribute authoritative lookups per shard without re-deriving the
  /// internal key hash.
  static std::size_t shard_index(Hash64 ev, Hash64 state) {
    return shard_of(Key{ev, state});
  }

  /// Canonical serialization (entries sorted by key); decode verifies the
  /// trailing checksum first and throws CheckpointError on any corruption.
  Blob encode() const;
  void decode(const Blob& data);  ///< replaces the current contents
  void save(const std::string& path) const;  ///< atomic (tmp + rename)
  void load(const std::string& path);

 private:
  struct Key {
    Hash64 ev = 0;
    Hash64 state = 0;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      std::uint64_t x = k.ev + 0x9e3779b97f4a7c15ull * k.state;
      x ^= x >> 33;
      x *= 0xff51afd7ed558ccdull;
      x ^= x >> 33;
      return static_cast<std::size_t>(x);
    }
  };

  using Map = std::unordered_map<Key, ExecResult, KeyHash>;

  static constexpr std::size_t kShards = 16;

  struct alignas(64) Shard {
    mutable std::mutex mu;
    Map young;
    Map old;
  };

  static std::size_t shard_of(const Key& k) { return KeyHash{}(k) & (kShards - 1); }

  std::size_t half() const { return max_entries_ / 2 > 0 ? max_entries_ / 2 : 1; }

  /// Rotate under ALL shard locks (taken in index order; the caller holds
  /// none): young becomes old globally, the previous old generation drops.
  void rotate_locked_all();

  // Eviction is generational, not insert-until-full. A budget-truncated
  // checker round executes (and therefore inserts) far more pairs than it
  // applies — a single period can flood the cap many times over, and with
  // insert-until-full the FIRST period's flood permanently starves every
  // later period, which is exactly backwards: cross-period reuse comes from
  // the MOST RECENT period's entries. Inserts go to the young generation;
  // when it reaches half the cap (summed across shards) it becomes old
  // (dropping the previous old generation) — so the newest half-cap of
  // entries always survives into the next period. Lookups never mutate the
  // maps (no hit promotion: a period draining hits out of the old
  // generation must not trigger the rotation that would destroy it). Keys
  // are disjoint between the generations.
  std::size_t max_entries_;
  mutable std::atomic<std::uint64_t> hits_{0};
  mutable std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> young_count_{0};
  mutable Shard shards_[kShards];
};

}  // namespace lmc
