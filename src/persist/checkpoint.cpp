#include "persist/checkpoint.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <cstring>
#include <tuple>

namespace lmc {

namespace {

constexpr std::size_t kMagicLen = sizeof(kCheckpointMagic);
// magic | u32 version | u32 num_nodes | u32 section_count | u32 reserved
constexpr std::size_t kHeaderLen = kMagicLen + 4 * sizeof(std::uint32_t);
// u32 id | u32 reserved | u64 len
constexpr std::size_t kSectionHeaderLen = 2 * sizeof(std::uint32_t) + sizeof(std::uint64_t);

[[noreturn]] void fail(const std::string& what) { throw CheckpointError("checkpoint: " + what); }

void check(bool ok, const char* what) {
  if (!ok) fail(what);
}

std::uint64_t d2u(double v) { return std::bit_cast<std::uint64_t>(v); }
double u2d(std::uint64_t v) { return std::bit_cast<double>(v); }

// --- field codecs ----------------------------------------------------------

void write_message(Writer& w, const Message& m) { m.serialize(w); }
Message read_message(Reader& r) { return Message::deserialize(r); }

void write_pred(Writer& w, const Pred& p) {
  w.u32(p.pred_idx);
  w.b(p.is_message);
  w.u64(p.ev_hash);
  write_u64_vec(w, p.gen);
}

Pred read_pred(Reader& r) {
  Pred p;
  p.pred_idx = r.u32();
  p.is_message = r.b();
  p.ev_hash = r.u64();
  p.gen = read_u64_vec(r);
  return p;
}

void write_u32_vec(Writer& w, const std::vector<std::uint32_t>& v) {
  w.u32(static_cast<std::uint32_t>(v.size()));
  for (std::uint32_t x : v) w.u32(x);
}

std::vector<std::uint32_t> read_u32_vec(Reader& r) {
  std::uint32_t n = r.u32();
  std::vector<std::uint32_t> v;
  v.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) v.push_back(r.u32());
  return v;
}

// --- section encoders ------------------------------------------------------

Blob enc_meta(const CheckerImage& img) {
  Writer w;
  w.u64(img.store.total_states());
  w.u32(img.num_nodes);
  for (NodeId n = 0; n < img.num_nodes; ++n) w.u64(img.store.size(n));
  w.u64(img.net_entries.size());
  w.u64(img.events.size());
  w.u64(img.epochs.size());
  w.u64(img.stats.transitions);
  w.u64(img.stats.confirmed_violations);
  w.u64(img.pending.size());
  return std::move(w).take();
}

Blob enc_epochs(const CheckerImage& img) {
  Writer w;
  w.u32(static_cast<std::uint32_t>(img.epochs.size()));
  for (const CheckerEpoch& e : img.epochs) {
    w.vec(e.nodes, [](Writer& ww, const Blob& b) { ww.bytes(b); });
    w.vec(e.msgs, [](Writer& ww, const Message& m) { write_message(ww, m); });
    write_u32_vec(w, e.roots);
    write_u64_vec(w, e.in_flight);
  }
  return std::move(w).take();
}

Blob enc_store(const CheckerImage& img) {
  Writer w;
  for (NodeId n = 0; n < img.num_nodes; ++n) {
    const std::uint32_t count = img.store.size(n);
    w.u32(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      const NodeStateRec& r = img.store.rec(n, i);
      w.bytes(r.blob);
      w.u64(r.hash);
      w.u32(r.depth);
      w.vec(r.preds, [](Writer& ww, const Pred& p) { write_pred(ww, p); });
      w.vec(r.self_loops, [](Writer& ww, const Pred& p) { write_pred(ww, p); });
      write_u64_vec(w, r.history);
    }
  }
  return std::move(w).take();
}

Blob enc_network(const CheckerImage& img) {
  Writer w;
  w.u32(static_cast<std::uint32_t>(img.net_entries.size()));
  for (const MonotonicNetwork::Entry& e : img.net_entries) {
    write_message(w, e.msg);
    w.u64(e.hash);
    w.u64(e.next_state);
  }
  w.u64(img.net_suppressed);
  return std::move(w).take();
}

Blob enc_events(const CheckerImage& img) {
  // Canonical order: sorted by event hash (the table is unordered).
  std::vector<const std::pair<const Hash64, EventRecord>*> sorted;
  sorted.reserve(img.events.size());
  for (const auto& kv : img.events) sorted.push_back(&kv);
  std::sort(sorted.begin(), sorted.end(),
            [](const auto* a, const auto* b) { return a->first < b->first; });
  Writer w;
  w.u32(static_cast<std::uint32_t>(sorted.size()));
  for (const auto* kv : sorted) {
    w.u64(kv->first);
    const EventRecord& er = kv->second;
    w.b(er.is_message);
    if (er.is_message) {
      write_message(w, er.msg);
    } else {
      w.u32(er.node);
      er.ev.serialize(w);
    }
  }
  return std::move(w).take();
}

Blob enc_feasibility(const CheckerImage& img) {
  Writer w;
  for (NodeId n = 0; n < img.num_nodes; ++n) write_u64_vec(w, img.node_gens[n]);
  for (NodeId n = 0; n < img.num_nodes; ++n) w.u64(img.pred_edges[n]);
  return std::move(w).take();
}

Blob enc_cursors(const CheckerImage& img) {
  Writer w;
  for (std::uint32_t c : img.internal_scan) w.u32(c);
  return std::move(w).take();
}

Blob enc_stats(const LocalMcStats& s) {
  Writer w;
  w.u64(s.transitions);
  w.u64(s.node_states);
  w.u64(s.system_states);
  w.u64(s.invariant_checks);
  w.u64(s.prelim_violations);
  w.u64(s.confirmed_violations);
  w.u64(s.unsound_violations);
  w.u64(s.soundness_calls);
  w.u64(s.feasibility_skips);
  w.u64(s.soundness_deferred);
  w.u64(s.deferred_processed);
  w.u64(s.deferred_dropped);  // v3: counter (v2 stored a latched bool here)
  w.u64(s.sequences_checked);
  w.u64(s.seq_enum_truncated);
  w.u64(s.combo_truncated);
  w.u64(s.dup_msgs_suppressed);
  w.u64(s.history_skips);
  w.u64(s.local_assert_discards);
  w.u64(s.messages_in_iplus);
  w.u64(s.warm_merges);
  w.u64(s.warm_new_roots);
  w.u64(s.warm_root_hits);
  w.u64(s.warm_msgs_reused);
  w.u64(s.warm_pairs_skipped);
  w.u64(s.checkpoints_written);
  w.u64(s.checkpoint_failures);
  w.u64(s.stored_bytes);
  w.u64(d2u(s.elapsed_s));
  w.u64(d2u(s.soundness_s));
  w.u64(d2u(s.system_state_s));
  w.u64(d2u(s.deferred_s));
  w.u64(d2u(s.soundness_wall_s));  // v3
  w.b(s.completed);
  w.u32(s.max_chain_depth_reached);
  w.u32(s.max_total_depth_reached);
  return std::move(w).take();
}

Blob enc_deferred(const CheckerImage& img) {
  Writer w;
  w.u32(static_cast<std::uint32_t>(img.deferred.size()));
  for (const DeferredCombo& d : img.deferred) {
    write_u32_vec(w, d.combo);
    w.u32(static_cast<std::uint32_t>(d.fixed.size()));
    for (std::uint8_t f : d.fixed) w.u8(f);
    w.b(d.has_mask);
    w.b(d.sym);  // v4
  }
  return std::move(w).take();
}

Blob enc_symmetry(const CheckerImage& img) {
  Writer w;
  w.u64(img.sym_stats.orbits);
  w.u64(img.sym_stats.orbit_hits);
  w.u64(img.sym_stats.represented);
  w.u64(img.sym_stats.assignments_tried);
  w.u64(img.sym_stats.orbit_defers);
  w.u32(img.sym_stats.classes);
  w.u8(img.sym_stats.active);
  write_u64_vec(w, img.sym_seen);
  return std::move(w).take();
}

Blob enc_por(const CheckerImage& img) {
  Writer w;
  w.u64(img.por_digest);
  w.u8(img.por_stats.active);
  w.u64(img.por_stats.relation_pairs);
  w.u64(img.por_stats.pairs_pruned);
  w.u64(img.por_stats.conservative_skips);
  w.u64(img.por_stats.deferrals);
  w.u64(img.por_stats.audits);
  w.u32(static_cast<std::uint32_t>(img.por_entries.size()));
  for (const std::vector<PorFwdEntry>& per_node : img.por_entries) {
    w.u32(static_cast<std::uint32_t>(per_node.size()));
    for (const PorFwdEntry& e : per_node) {
      w.u32(e.pred_idx);
      w.u64(e.ev_hash);
      w.u8(e.outcome);
    }
  }
  // Deferred pairs awaiting their one-generation retry (always messages).
  w.u32(static_cast<std::uint32_t>(img.por_deferred.size()));
  for (const PendingTask& t : img.por_deferred) {
    w.u64(t.net_idx);
    w.u32(t.node);
    w.u32(t.state_idx);
  }
  return std::move(w).take();
}

Blob enc_violations(const CheckerImage& img) {
  Writer w;
  w.u32(static_cast<std::uint32_t>(img.violations.size()));
  for (const LocalViolation& v : img.violations) {
    write_u32_vec(w, v.combo);
    write_u64_vec(w, v.state_hashes);
    w.vec(v.system_state, [](Writer& ww, const Blob& b) { ww.bytes(b); });
    w.str(v.invariant);
    w.b(v.confirmed);
    w.vec(v.witness, [](Writer& ww, const ScheduleStep& s) {
      ww.u32(s.node);
      ww.b(s.is_message);
      ww.u64(s.ev_hash);
    });
    w.u64(v.epoch);
  }
  return std::move(w).take();
}

Blob enc_pending(const CheckerImage& img) {
  Writer w;
  w.u32(static_cast<std::uint32_t>(img.pending.size()));
  for (const PendingTask& t : img.pending) {
    w.b(t.is_message);
    w.u64(t.net_idx);
    w.u32(t.node);
    w.u32(t.state_idx);
  }
  return std::move(w).take();
}

Blob enc_segment(const CheckerImage& img) {
  Writer w;
  w.u64(img.segment_id);
  w.u32(img.base_round);
  return std::move(w).take();
}

// --- section decoders (with structural validation) -------------------------

void dec_epochs(Reader& r, CheckerImage& img) {
  std::uint32_t n = r.u32();
  img.epochs.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    CheckerEpoch e;
    e.nodes = r.vec<Blob>([](Reader& rr) { return rr.bytes(); });
    e.msgs = r.vec<Message>([](Reader& rr) { return read_message(rr); });
    e.roots = read_u32_vec(r);
    e.in_flight = read_u64_vec(r);
    check(e.nodes.size() == img.num_nodes, "epoch node count mismatch");
    check(e.roots.size() == img.num_nodes, "epoch root count mismatch");
    check(e.in_flight.size() == e.msgs.size(), "epoch in-flight/msgs count mismatch");
    for (std::size_t k = 0; k < e.msgs.size(); ++k)
      check(e.msgs[k].hash() == e.in_flight[k], "epoch in-flight hash mismatch");
    img.epochs.push_back(std::move(e));
  }
  r.expect_exhausted();
}

void dec_store(Reader& r, CheckerImage& img) {
  img.store = LocalStore(img.num_nodes);
  for (NodeId n = 0; n < img.num_nodes; ++n) {
    const std::uint32_t count = r.u32();
    for (std::uint32_t i = 0; i < count; ++i) {
      NodeStateRec rec;
      rec.blob = r.bytes();
      rec.hash = r.u64();
      rec.depth = r.u32();
      rec.preds = r.vec<Pred>([](Reader& rr) { return read_pred(rr); });
      rec.self_loops = r.vec<Pred>([](Reader& rr) { return read_pred(rr); });
      rec.history = read_u64_vec(r);
      check(rec.hash == hash_blob(rec.blob), "node state hash mismatch (corrupt blob)");
      for (const Pred& p : rec.preds) check(p.pred_idx < count, "pred index out of range");
      for (const Pred& p : rec.self_loops) check(p.pred_idx < count, "self-loop index out of range");
      check(std::is_sorted(rec.history.begin(), rec.history.end()), "history not sorted");
      img.store.add(n, std::move(rec));
    }
  }
  r.expect_exhausted();
}

void dec_network(Reader& r, CheckerImage& img) {
  std::uint32_t n = r.u32();
  img.net_entries.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    MonotonicNetwork::Entry e;
    e.msg = read_message(r);
    e.hash = r.u64();
    e.next_state = r.u64();
    check(e.hash == e.msg.hash(), "network entry hash mismatch (corrupt message)");
    check(e.msg.dst < img.num_nodes, "network entry destination out of range");
    check(e.next_state <= img.store.size(e.msg.dst), "network cursor beyond store");
    img.net_entries.push_back(std::move(e));
  }
  img.net_suppressed = r.u64();
  r.expect_exhausted();
}

void dec_events(Reader& r, CheckerImage& img) {
  std::uint32_t n = r.u32();
  img.events.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    Hash64 key = r.u64();
    EventRecord er;
    er.is_message = r.b();
    if (er.is_message) {
      er.msg = read_message(r);
      check(er.msg.hash() == key, "event table key mismatch (message)");
    } else {
      er.node = r.u32();
      check(er.node < img.num_nodes, "event node out of range");
      er.ev = InternalEvent::deserialize(r);
      check(er.ev.hash(er.node) == key, "event table key mismatch (internal)");
    }
    img.events.emplace(key, std::move(er));
  }
  r.expect_exhausted();
}

void dec_feasibility(Reader& r, CheckerImage& img) {
  img.node_gens.resize(img.num_nodes);
  img.pred_edges.resize(img.num_nodes);
  for (NodeId n = 0; n < img.num_nodes; ++n) {
    img.node_gens[n] = read_u64_vec(r);
    check(std::is_sorted(img.node_gens[n].begin(), img.node_gens[n].end()),
          "node_gens not sorted");
  }
  for (NodeId n = 0; n < img.num_nodes; ++n) img.pred_edges[n] = r.u64();
  r.expect_exhausted();
}

void dec_cursors(Reader& r, CheckerImage& img) {
  img.internal_scan.resize(img.num_nodes);
  for (NodeId n = 0; n < img.num_nodes; ++n) {
    img.internal_scan[n] = r.u32();
    check(img.internal_scan[n] <= img.store.size(n), "internal cursor beyond store");
  }
  r.expect_exhausted();
}

void dec_stats(Reader& r, LocalMcStats& s, std::uint32_t version) {
  s.transitions = r.u64();
  s.node_states = r.u64();
  s.system_states = r.u64();
  s.invariant_checks = r.u64();
  s.prelim_violations = r.u64();
  s.confirmed_violations = r.u64();
  s.unsound_violations = r.u64();
  s.soundness_calls = r.u64();
  s.feasibility_skips = r.u64();
  s.soundness_deferred = r.u64();
  s.deferred_processed = r.u64();
  // v2 latched a bool; widen it to 0/1 so old files keep their meaning.
  s.deferred_dropped = version >= 3 ? r.u64() : (r.b() ? 1 : 0);
  s.sequences_checked = r.u64();
  s.seq_enum_truncated = r.u64();
  s.combo_truncated = r.u64();
  s.dup_msgs_suppressed = r.u64();
  s.history_skips = r.u64();
  s.local_assert_discards = r.u64();
  s.messages_in_iplus = r.u64();
  s.warm_merges = r.u64();
  s.warm_new_roots = r.u64();
  s.warm_root_hits = r.u64();
  s.warm_msgs_reused = r.u64();
  s.warm_pairs_skipped = r.u64();
  s.checkpoints_written = r.u64();
  s.checkpoint_failures = r.u64();
  s.stored_bytes = r.u64();
  s.elapsed_s = u2d(r.u64());
  s.soundness_s = u2d(r.u64());
  s.system_state_s = u2d(r.u64());
  s.deferred_s = u2d(r.u64());
  s.soundness_wall_s = version >= 3 ? u2d(r.u64()) : 0.0;
  s.completed = r.b();
  s.max_chain_depth_reached = r.u32();
  s.max_total_depth_reached = r.u32();
  r.expect_exhausted();
}

void dec_deferred(Reader& r, CheckerImage& img, std::uint32_t version) {
  std::uint32_t n = r.u32();
  img.deferred.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    DeferredCombo d;
    d.combo = read_u32_vec(r);
    std::uint32_t fn = r.u32();
    d.fixed.reserve(fn);
    for (std::uint32_t k = 0; k < fn; ++k) d.fixed.push_back(r.u8());
    d.has_mask = r.b();
    d.sym = version >= 4 ? r.b() : false;
    check(d.combo.size() == img.num_nodes, "deferred combo size mismatch");
    check(!d.has_mask || d.fixed.size() == img.num_nodes, "deferred mask size mismatch");
    for (NodeId k = 0; k < img.num_nodes; ++k)
      check(d.combo[k] < img.store.size(k), "deferred combo index out of range");
    img.deferred.push_back(std::move(d));
  }
  r.expect_exhausted();
}

void dec_violations(Reader& r, CheckerImage& img) {
  std::uint32_t n = r.u32();
  img.violations.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    LocalViolation v;
    v.combo = read_u32_vec(r);
    v.state_hashes = read_u64_vec(r);
    v.system_state = r.vec<Blob>([](Reader& rr) { return rr.bytes(); });
    v.invariant = r.str();
    v.confirmed = r.b();
    v.witness = r.vec<ScheduleStep>([](Reader& rr) {
      ScheduleStep s;
      s.node = rr.u32();
      s.is_message = rr.b();
      s.ev_hash = rr.u64();
      return s;
    });
    v.epoch = r.u64();
    check(v.combo.size() == img.num_nodes, "violation combo size mismatch");
    img.violations.push_back(std::move(v));
  }
  r.expect_exhausted();
}

void dec_pending(Reader& r, CheckerImage& img) {
  std::uint32_t n = r.u32();
  img.pending.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    PendingTask t;
    t.is_message = r.b();
    t.net_idx = r.u64();
    t.node = r.u32();
    t.state_idx = r.u32();
    check(t.node < img.num_nodes, "pending task node out of range");
    check(t.state_idx < img.store.size(t.node), "pending task state out of range");
    check(!t.is_message || t.net_idx < img.net_entries.size(),
          "pending task message index out of range");
    img.pending.push_back(t);
  }
  r.expect_exhausted();
}

void dec_segment(Reader& r, CheckerImage& img) {
  img.segment_id = r.u64();
  img.base_round = r.u32();
  r.expect_exhausted();
}

void dec_symmetry(Reader& r, CheckerImage& img) {
  img.has_symmetry = true;
  img.sym_stats.orbits = r.u64();
  img.sym_stats.orbit_hits = r.u64();
  img.sym_stats.represented = r.u64();
  img.sym_stats.assignments_tried = r.u64();
  img.sym_stats.orbit_defers = r.u64();
  img.sym_stats.classes = r.u32();
  img.sym_stats.active = r.u8();
  img.sym_seen = read_u64_vec(r);
  check(std::is_sorted(img.sym_seen.begin(), img.sym_seen.end()), "orbit seen-set not sorted");
  r.expect_exhausted();
}

void dec_por(Reader& r, CheckerImage& img) {
  img.has_por = true;
  img.por_digest = r.u64();
  img.por_stats.active = r.u8();
  img.por_stats.relation_pairs = r.u64();
  img.por_stats.pairs_pruned = r.u64();
  img.por_stats.conservative_skips = r.u64();
  img.por_stats.deferrals = r.u64();
  img.por_stats.audits = r.u64();
  const std::uint32_t n = r.u32();
  check(n == img.num_nodes, "por node count mismatch");
  img.por_entries.assign(n, {});
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::uint32_t cnt = r.u32();
    std::vector<PorFwdEntry>& per_node = img.por_entries[i];
    per_node.reserve(cnt);
    for (std::uint32_t j = 0; j < cnt; ++j) {
      PorFwdEntry e;
      e.pred_idx = r.u32();
      e.ev_hash = r.u64();
      e.outcome = r.u8();
      check(e.outcome <= 2, "por entry outcome out of range");
      check(e.pred_idx < img.store.size(static_cast<NodeId>(i)),
            "por entry pred state out of range");
      per_node.push_back(e);
    }
    check(std::is_sorted(per_node.begin(), per_node.end(),
                         [](const PorFwdEntry& a, const PorFwdEntry& b) {
                           return std::tie(a.pred_idx, a.ev_hash) <
                                  std::tie(b.pred_idx, b.ev_hash);
                         }),
          "por entries not sorted");
  }
  const std::uint32_t dn = r.u32();
  img.por_deferred.reserve(dn);
  for (std::uint32_t j = 0; j < dn; ++j) {
    PendingTask t;
    t.is_message = true;
    t.net_idx = r.u64();
    t.node = static_cast<NodeId>(r.u32());
    t.state_idx = r.u32();
    check(t.node < img.num_nodes, "por deferred node out of range");
    check(t.net_idx < img.net_entries.size(), "por deferred message out of range");
    check(t.state_idx < img.store.size(t.node), "por deferred state out of range");
    img.por_deferred.push_back(t);
  }
  r.expect_exhausted();
}

}  // namespace

// --- container -------------------------------------------------------------

Blob CheckpointWriter::finish() && {
  Writer w;
  w.raw(reinterpret_cast<const std::uint8_t*>(kCheckpointMagic), kMagicLen);
  w.u32(kCheckpointVersion);
  w.u32(num_nodes_);
  w.u32(static_cast<std::uint32_t>(sections_.size()));
  w.u32(0);  // reserved
  for (const auto& [id, payload] : sections_) {
    w.u32(id);
    w.u32(0);  // reserved
    w.u64(payload.size());
    w.raw(payload.data(), payload.size());
  }
  Blob out = std::move(w).take();
  const Hash64 sum = hash_bytes(out.data(), out.size());
  Writer tail;
  tail.u64(sum);
  out.insert(out.end(), tail.data().begin(), tail.data().end());
  return out;
}

CheckpointReader::CheckpointReader(const Blob& data) : data_(&data) {
  check(data.size() >= kHeaderLen + sizeof(std::uint64_t), "file too small to be a checkpoint");
  check(std::memcmp(data.data(), kCheckpointMagic, kMagicLen) == 0,
        "bad magic (not a checkpoint file)");

  // Checksum before anything else is interpreted: the trailing u64 must
  // equal the hash of every preceding byte.
  const std::size_t body_len = data.size() - sizeof(std::uint64_t);
  Reader tail(data.data() + body_len, sizeof(std::uint64_t));
  const Hash64 expect = tail.u64();
  const Hash64 got = hash_bytes(data.data(), body_len);
  check(got == expect, "checksum mismatch (truncated or corrupted file)");

  Reader r(data.data(), body_len);
  r.u64();  // magic (already compared)
  version_ = r.u32();
  check(version_ >= kMinCheckpointVersion && version_ <= kCheckpointVersion,
        "unsupported format version");
  num_nodes_ = r.u32();
  const std::uint32_t n_sections = r.u32();
  r.u32();  // reserved

  std::size_t off = kHeaderLen;
  for (std::uint32_t i = 0; i < n_sections; ++i) {
    check(r.remaining() >= kSectionHeaderLen, "section table truncated");
    Section s;
    s.id = r.u32();
    r.u32();  // reserved
    const std::uint64_t len = r.u64();
    check(len <= r.remaining(), "section length exceeds file");
    s.offset = off + kSectionHeaderLen;
    s.len = static_cast<std::size_t>(len);
    for (const Section& prev : sections_) check(prev.id != s.id, "duplicate section id");
    sections_.push_back(s);
    off = s.offset + s.len;
    r = Reader(data.data() + off, body_len - off);
  }
  check(r.remaining() == 0, "trailing bytes after last section");
}

bool CheckpointReader::has(std::uint32_t id) const {
  for (const Section& s : sections_)
    if (s.id == id) return true;
  return false;
}

Reader CheckpointReader::open(std::uint32_t id) const {
  for (const Section& s : sections_)
    if (s.id == id) return Reader(data_->data() + s.offset, s.len);
  fail("missing required section");
}

// --- image codec -----------------------------------------------------------

Blob encode_checkpoint(const CheckerImage& img) {
  CheckpointWriter w(img.num_nodes);
  w.add_section(kSecMeta, enc_meta(img));
  w.add_section(kSecEpochs, enc_epochs(img));
  w.add_section(kSecStore, enc_store(img));
  w.add_section(kSecNetwork, enc_network(img));
  w.add_section(kSecEvents, enc_events(img));
  w.add_section(kSecFeasibility, enc_feasibility(img));
  w.add_section(kSecCursors, enc_cursors(img));
  w.add_section(kSecStats, enc_stats(img.stats));
  w.add_section(kSecDeferred, enc_deferred(img));
  w.add_section(kSecViolations, enc_violations(img));
  w.add_section(kSecPending, enc_pending(img));
  w.add_section(kSecSegment, enc_segment(img));
  if (img.has_symmetry) w.add_section(kSecSymmetry, enc_symmetry(img));
  if (img.has_por) w.add_section(kSecPor, enc_por(img));
  return std::move(w).finish();
}

CheckerImage decode_checkpoint(const Blob& data) {
  CheckpointReader r(data);
  CheckerImage img;
  img.num_nodes = r.num_nodes();
  check(img.num_nodes > 0, "zero nodes");
  try {
    // Order matters: later sections validate indices against the store.
    {
      Reader s = r.open(kSecStore);
      dec_store(s, img);
    }
    {
      Reader s = r.open(kSecEpochs);
      dec_epochs(s, img);
      for (const CheckerEpoch& e : img.epochs)
        for (NodeId n = 0; n < img.num_nodes; ++n)
          check(e.roots[n] < img.store.size(n), "epoch root out of range");
    }
    {
      Reader s = r.open(kSecNetwork);
      dec_network(s, img);
    }
    {
      Reader s = r.open(kSecEvents);
      dec_events(s, img);
    }
    {
      Reader s = r.open(kSecFeasibility);
      dec_feasibility(s, img);
    }
    {
      Reader s = r.open(kSecCursors);
      dec_cursors(s, img);
    }
    {
      Reader s = r.open(kSecStats);
      dec_stats(s, img.stats, r.version());
    }
    {
      Reader s = r.open(kSecDeferred);
      dec_deferred(s, img, r.version());
    }
    {
      Reader s = r.open(kSecViolations);
      dec_violations(s, img);
    }
    {
      Reader s = r.open(kSecPending);
      dec_pending(s, img);
    }
    // Section 12 is absent in files written before it existed; the stamps
    // default to 0 (the values a fresh run would carry).
    if (r.has(kSecSegment)) {
      Reader s = r.open(kSecSegment);
      dec_segment(s, img);
    }
    // Section 13 exists only in files written by symmetry-active runs.
    if (r.has(kSecSymmetry)) {
      Reader s = r.open(kSecSymmetry);
      dec_symmetry(s, img);
    }
    // Section 14 exists only in files written by POR-active runs (v5+).
    if (r.has(kSecPor)) {
      Reader s = r.open(kSecPor);
      dec_por(s, img);
    }
  } catch (const SerializeError& e) {
    fail(std::string("malformed section: ") + e.what());
  }
  check(!img.epochs.empty(), "no epochs");
  return img;
}

CheckpointInfo inspect_checkpoint(const Blob& data) {
  CheckpointReader r(data);
  CheckpointInfo info;
  info.version = r.version();
  info.num_nodes = r.num_nodes();
  info.sections = r.sections();
  if (r.has(kSecMeta)) {
    try {
      Reader m = r.open(kSecMeta);
      info.total_states = m.u64();
      const std::uint32_t n = m.u32();
      check(n == info.num_nodes, "meta node count mismatch");
      for (std::uint32_t i = 0; i < n; ++i) info.states_per_node.push_back(m.u64());
      info.net_size = m.u64();
      info.event_count = m.u64();
      info.epoch_count = m.u64();
      info.transitions = m.u64();
      info.confirmed_violations = m.u64();
      info.pending_tasks = m.u64();
      m.expect_exhausted();
    } catch (const SerializeError& e) {
      fail(std::string("malformed meta section: ") + e.what());
    }
  }
  if (r.has(kSecSegment)) {
    try {
      Reader s = r.open(kSecSegment);
      info.segment_id = s.u64();
      info.base_round = s.u32();
      s.expect_exhausted();
    } catch (const SerializeError& e) {
      fail(std::string("malformed segment section: ") + e.what());
    }
  }
  if (r.has(kSecSymmetry)) {
    try {
      Reader s = r.open(kSecSymmetry);
      info.has_symmetry = true;
      info.sym_orbits = s.u64();
      s.u64();  // orbit_hits
      info.sym_represented = s.u64();
      s.u64();  // assignments_tried
      s.u64();  // orbit_defers
      info.sym_classes = s.u32();
      s.u8();  // active
      info.sym_seen = s.u32();
    } catch (const SerializeError& e) {
      fail(std::string("malformed symmetry section: ") + e.what());
    }
  }
  if (r.has(kSecPor)) {
    try {
      Reader s = r.open(kSecPor);
      info.has_por = true;
      info.por_digest = s.u64();
      s.u8();  // active
      info.por_relation_pairs = s.u64();
      info.por_pruned = s.u64();
      info.por_conservative = s.u64();
      s.u64();  // deferrals (cumulative counter; the pending list follows)
      info.por_audits = s.u64();
      const std::uint32_t n = s.u32();
      for (std::uint32_t i = 0; i < n; ++i) {
        const std::uint32_t cnt = s.u32();
        info.por_entries += cnt;
        for (std::uint32_t j = 0; j < cnt; ++j) {
          s.u32();
          s.u64();
          s.u8();
        }
      }
      info.por_deferred = s.u32();
      for (std::uint64_t j = 0; j < info.por_deferred; ++j) {
        s.u64();
        s.u32();
        s.u32();
      }
      s.expect_exhausted();
    } catch (const SerializeError& e) {
      fail(std::string("malformed por section: ") + e.what());
    }
  }
  return info;
}

// --- file I/O --------------------------------------------------------------

void write_checkpoint_file(const std::string& path, const Blob& data) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) fail("cannot open for writing: " + tmp);
  const std::size_t wrote = data.empty() ? 0 : std::fwrite(data.data(), 1, data.size(), f);
  const bool flushed = std::fclose(f) == 0;
  if (wrote != data.size() || !flushed) {
    std::remove(tmp.c_str());
    fail("short write: " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    fail("cannot rename into place: " + path);
  }
}

Blob read_checkpoint_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) fail("cannot open: " + path);
  Blob data;
  std::uint8_t buf[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) data.insert(data.end(), buf, buf + n);
  const bool err = std::ferror(f) != 0;
  std::fclose(f);
  if (err) fail("read error: " + path);
  return data;
}

}  // namespace lmc
