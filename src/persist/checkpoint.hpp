// Persistent exploration store (checkpoint/resume).
//
// The local model checker's entire state is monotonic: LS_n and I+ only
// grow, predecessor pointers and event records are append-only. That makes
// the checker trivially checkpointable — a snapshot of the stores IS a
// resumable search, no in-flight stack to unwind. This header defines the
// on-disk format (see FORMAT.md next to this file) and the codec between a
// checkpoint blob and a `CheckerImage`, the passive mirror of every field
// `LocalModelChecker` needs to continue a run exactly where it stopped.
//
// Format invariants:
//  * magic + version + trailing whole-file checksum (hash_bytes) — a
//    truncated, bit-flipped or foreign file is rejected before any field
//    is interpreted;
//  * sections are length-prefixed and independently decodable; unknown
//    section ids are ignored on read (forward compatibility);
//  * encoding is canonical (unordered containers are sorted), so
//    decode→encode reproduces the input byte for byte — the round-trip
//    property the tests pin down.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "analyze/independence/independence.hpp"
#include "mc/local_store.hpp"
#include "mc/stats.hpp"
#include "mc/symmetry/role_group.hpp"
#include "net/monotonic_network.hpp"
#include "runtime/serialize.hpp"

namespace lmc {

/// Thrown on any malformed, corrupted or incompatible checkpoint.
class CheckpointError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

inline constexpr char kCheckpointMagic[8] = {'L', 'M', 'C', 'C', 'K', 'P', 'T', '\n'};
// v2: +checkpoint_failures, +deferred_s
// v3: deferred_dropped bool -> u64 counter (in place), +soundness_wall_s.
// v4: +DeferredCombo.sym byte, +kSecSymmetry (optional orbit-cache section).
// v5: +kSecPor (optional partial-order-reduction section: relation digest,
//     PorStats, per-node kNoop/kDiscard forward-map entries).
// Writers always emit the current version; the reader accepts older files
// and widens/defaults the changed fields on decode (kMinCheckpointVersion).
inline constexpr std::uint32_t kCheckpointVersion = 5;
inline constexpr std::uint32_t kMinCheckpointVersion = 2;

/// Section ids of the container format. Ids are stable across versions;
/// readers skip ids they do not know.
enum SectionId : std::uint32_t {
  kSecMeta = 1,         ///< summary counters (cheap inspection)
  kSecEpochs = 2,       ///< snapshot epochs (nodes, msgs, roots, in-flight)
  kSecStore = 3,        ///< LS_n: every traversed node state + pred graph
  kSecNetwork = 4,      ///< I+: entries with per-message cursors
  kSecEvents = 5,       ///< event table (hash -> message/internal event)
  kSecFeasibility = 6,  ///< node_gens / pred_edges feasibility inputs
  kSecCursors = 7,      ///< per-node internal-event scan cursors
  kSecStats = 8,        ///< LocalMcStats
  kSecDeferred = 9,     ///< phase-2 soundness queue
  kSecViolations = 10,  ///< violations recorded so far
  kSecPending = 11,     ///< collected-but-unapplied tasks of the stopped round
  kSecSegment = 12,     ///< trace segment id + base round (resume continuity)
  kSecSymmetry = 13,    ///< orbit-cache summary (present iff symmetry active)
  kSecPor = 14,         ///< partial-order reduction (present iff POR active)
};

/// Assembles header | sections | checksum.
class CheckpointWriter {
 public:
  explicit CheckpointWriter(std::uint32_t num_nodes) : num_nodes_(num_nodes) {}

  void add_section(std::uint32_t id, Blob payload) {
    sections_.emplace_back(id, std::move(payload));
  }

  Blob finish() &&;

 private:
  std::uint32_t num_nodes_;
  std::vector<std::pair<std::uint32_t, Blob>> sections_;
};

/// Validates the container (magic, version, checksum, section table) and
/// hands out per-section Readers. Holds a pointer into the caller's blob —
/// the blob must outlive the reader.
class CheckpointReader {
 public:
  explicit CheckpointReader(const Blob& data);

  std::uint32_t version() const { return version_; }
  std::uint32_t num_nodes() const { return num_nodes_; }

  struct Section {
    std::uint32_t id = 0;
    std::size_t offset = 0;  ///< payload start within the blob
    std::size_t len = 0;
  };
  const std::vector<Section>& sections() const { return sections_; }

  bool has(std::uint32_t id) const;
  /// Reader over the section's payload; throws CheckpointError if absent.
  Reader open(std::uint32_t id) const;

 private:
  const Blob* data_;
  std::uint32_t version_ = 0;
  std::uint32_t num_nodes_ = 0;
  std::vector<Section> sections_;
};

/// A deferred soundness combination (mirror of the checker's phase-2 queue).
struct DeferredCombo {
  std::vector<std::uint32_t> combo;
  std::vector<std::uint8_t> fixed;
  bool has_mask = false;
  /// The combo is a canonical orbit representative; phase-2 must expand its
  /// class assignments when verifying (v4+; decodes to false from older files).
  bool sym = false;
};

/// One non-reconstructible forward-map entry of the partial-order reduction
/// (kSecPor): the delivery of message `ev_hash` at state `pred_idx` was a
/// silent no-op (outcome 0), an assert-discard (outcome 1), or was itself
/// pruned (outcome 2) — outcomes that leave no trace in the pred graph but
/// justify (or block) later prunes, so a resumed run decides identically.
struct PorFwdEntry {
  std::uint32_t pred_idx = 0;
  Hash64 ev_hash = 0;
  std::uint8_t outcome = 0;
};

/// One collected-but-unapplied exploration task. Cursors advance when tasks
/// are collected, so a round interrupted by a budget stop must persist its
/// tail — resuming re-executes exactly these, in order, before collecting.
struct PendingTask {
  bool is_message = false;
  std::uint64_t net_idx = 0;  ///< message tasks: entry index in I+
  NodeId node = 0;
  std::uint32_t state_idx = 0;
};

/// Passive mirror of a `LocalModelChecker` mid-run: everything needed to
/// re-enter the round loop with cursors intact.
struct CheckerImage {
  std::uint32_t num_nodes = 0;
  LocalStore store{0};
  std::vector<MonotonicNetwork::Entry> net_entries;
  std::uint64_t net_suppressed = 0;
  EventTable events;
  std::vector<CheckerEpoch> epochs;
  std::vector<std::vector<Hash64>> node_gens;  ///< per node, sorted
  std::vector<std::uint64_t> pred_edges;
  std::vector<std::uint32_t> internal_scan;
  LocalMcStats stats;
  std::vector<DeferredCombo> deferred;
  std::vector<LocalViolation> violations;
  std::vector<PendingTask> pending;
  /// Trace-continuity stamps (kSecSegment): the id of the trace segment
  /// that wrote the checkpoint and its round counter, so a resumed run
  /// numbers its segment/rounds as a continuation instead of restarting at
  /// 0. Absent in pre-section-12 files; both default to 0.
  std::uint64_t segment_id = 0;
  std::uint32_t base_round = 0;
  /// Orbit-cache summary (kSecSymmetry): present only when the run that
  /// wrote the checkpoint had symmetry reduction active. `sym_seen` is the
  /// sorted orbit-hash seen-set; resuming with a different effective
  /// symmetry mode is rejected.
  bool has_symmetry = false;
  symmetry::SymmetryStats sym_stats;
  std::vector<Hash64> sym_seen;
  /// Partial-order reduction (kSecPor, v5+): present only when the writing
  /// run pruned with an independence relation. `por_digest` pins the
  /// relation the prune decisions were taken under (resuming under a
  /// different one is rejected); `por_entries` holds, per node and sorted
  /// by (pred_idx, ev_hash), the kNoop (0) / kDiscard (1) / kPruned (2)
  /// delivery outcomes that cannot be rebuilt from the pred graph.
  bool has_por = false;
  Hash64 por_digest = 0;
  indep::PorStats por_stats;
  std::vector<std::vector<PorFwdEntry>> por_entries;
  /// Message pairs the pruner deferred one generation whose retry had not
  /// happened when the checkpoint was taken (cursors already advanced past
  /// them, so losing them would lose exploration).
  std::vector<PendingTask> por_deferred;
};

/// Canonical encoding (sorted unordered containers; stable section order).
Blob encode_checkpoint(const CheckerImage& img);

/// Full decode with structural validation: every index bound-checked, every
/// stored hash recomputed and compared. Throws CheckpointError with a
/// message naming the offending section/field.
CheckerImage decode_checkpoint(const Blob& data);

/// Cheap header + meta inspection (does not decode the heavy sections).
struct CheckpointInfo {
  std::uint32_t version = 0;
  std::uint32_t num_nodes = 0;
  std::vector<CheckpointReader::Section> sections;
  // From kSecMeta:
  std::uint64_t total_states = 0;
  std::vector<std::uint64_t> states_per_node;
  std::uint64_t net_size = 0;
  std::uint64_t event_count = 0;
  std::uint64_t epoch_count = 0;
  std::uint64_t transitions = 0;
  std::uint64_t confirmed_violations = 0;
  std::uint64_t pending_tasks = 0;
  // From kSecSegment (0/0 for pre-section-12 files and straight runs):
  std::uint64_t segment_id = 0;
  std::uint32_t base_round = 0;
  // From kSecSymmetry (absent unless the writing run had the reduction on):
  bool has_symmetry = false;
  std::uint64_t sym_orbits = 0;
  std::uint64_t sym_represented = 0;
  std::uint32_t sym_classes = 0;
  std::uint64_t sym_seen = 0;
  // From kSecPor (absent unless the writing run had the reduction on):
  bool has_por = false;
  Hash64 por_digest = 0;
  std::uint64_t por_relation_pairs = 0;
  std::uint64_t por_pruned = 0;
  std::uint64_t por_conservative = 0;
  std::uint64_t por_audits = 0;
  std::uint64_t por_entries = 0;   ///< persisted kNoop/kDiscard/kPruned records
  std::uint64_t por_deferred = 0;  ///< deferred pairs awaiting their retry
};
CheckpointInfo inspect_checkpoint(const Blob& data);

/// Atomic file write (tmp + rename) / whole-file read. Throw CheckpointError
/// on I/O failure.
void write_checkpoint_file(const std::string& path, const Blob& data);
Blob read_checkpoint_file(const std::string& path);

}  // namespace lmc
