#include "persist/exec_cache.hpp"

#include <algorithm>
#include <cstring>
#include <vector>

#include "persist/checkpoint.hpp"

namespace lmc {

namespace {

constexpr std::size_t kMagicLen = sizeof(kExecCacheMagic);
// magic | u32 version | u32 reserved | u64 entry count
constexpr std::size_t kHeaderLen = kMagicLen + 2 * sizeof(std::uint32_t) + sizeof(std::uint64_t);

[[noreturn]] void fail(const std::string& what) { throw CheckpointError("exec cache: " + what); }

void check(bool ok, const char* what) {
  if (!ok) fail(what);
}

}  // namespace

bool ExecCache::lookup(Hash64 ev, Hash64 state, ExecResult& out) const {
  const Key k{ev, state};
  std::lock_guard<std::mutex> lk(mu_);
  auto it = young_.find(k);
  if (it == young_.end()) {
    it = old_.find(k);
    if (it == old_.end()) {
      ++misses_;
      return false;
    }
  }
  ++hits_;
  out = it->second;
  return true;
}

void ExecCache::insert(Hash64 ev, Hash64 state, const ExecResult& r) {
  std::lock_guard<std::mutex> lk(mu_);
  if (young_.count(Key{ev, state}) != 0 || old_.count(Key{ev, state}) != 0) return;
  if (young_.size() >= half()) {
    old_ = std::move(young_);
    young_.clear();
  }
  young_.emplace(Key{ev, state}, r);
}

std::size_t ExecCache::size() const {
  std::lock_guard<std::mutex> lk(mu_);
  return young_.size() + old_.size();
}

std::uint64_t ExecCache::hits() const {
  std::lock_guard<std::mutex> lk(mu_);
  return hits_;
}

std::uint64_t ExecCache::misses() const {
  std::lock_guard<std::mutex> lk(mu_);
  return misses_;
}

Blob ExecCache::encode() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<const std::pair<const Key, ExecResult>*> sorted;
  sorted.reserve(young_.size() + old_.size());
  for (const auto& kv : young_) sorted.push_back(&kv);
  for (const auto& kv : old_) sorted.push_back(&kv);
  std::sort(sorted.begin(), sorted.end(), [](const auto* a, const auto* b) {
    return a->first.ev != b->first.ev ? a->first.ev < b->first.ev
                                      : a->first.state < b->first.state;
  });
  Writer w;
  w.raw(reinterpret_cast<const std::uint8_t*>(kExecCacheMagic), kMagicLen);
  w.u32(kExecCacheVersion);
  w.u32(0);  // reserved
  w.u64(sorted.size());
  for (const auto* kv : sorted) {
    w.u64(kv->first.ev);
    w.u64(kv->first.state);
    const ExecResult& r = kv->second;
    w.bytes(r.state);
    w.vec(r.sent, [](Writer& ww, const Message& m) { m.serialize(ww); });
    w.b(r.assert_failed);
    w.str(r.assert_msg);
  }
  Blob out = std::move(w).take();
  const Hash64 sum = hash_bytes(out.data(), out.size());
  Writer tail;
  tail.u64(sum);
  out.insert(out.end(), tail.data().begin(), tail.data().end());
  return out;
}

void ExecCache::decode(const Blob& data) {
  check(data.size() >= kHeaderLen + sizeof(std::uint64_t), "file too small");
  check(std::memcmp(data.data(), kExecCacheMagic, kMagicLen) == 0,
        "bad magic (not an exec cache file)");
  const std::size_t body_len = data.size() - sizeof(std::uint64_t);
  Reader tail(data.data() + body_len, sizeof(std::uint64_t));
  check(hash_bytes(data.data(), body_len) == tail.u64(),
        "checksum mismatch (truncated or corrupted file)");

  Map map;
  try {
    Reader r(data.data(), body_len);
    r.u64();  // magic (already compared)
    check(r.u32() == kExecCacheVersion, "unsupported format version");
    r.u32();  // reserved
    const std::uint64_t count = r.u64();
    for (std::uint64_t i = 0; i < count; ++i) {
      Key k;
      k.ev = r.u64();
      k.state = r.u64();
      ExecResult res;
      res.state = r.bytes();
      res.sent = r.vec<Message>([](Reader& rr) { return Message::deserialize(rr); });
      res.assert_failed = r.b();
      res.assert_msg = r.str();
      check(map.emplace(k, std::move(res)).second, "duplicate cache key");
    }
    r.expect_exhausted();
  } catch (const SerializeError& e) {
    fail(std::string("malformed entry: ") + e.what());
  }

  // Loaded entries all land in the young generation: a load is a fresh
  // start, and they should survive at least one rotation of new inserts.
  std::lock_guard<std::mutex> lk(mu_);
  young_ = std::move(map);
  old_.clear();
  hits_ = misses_ = 0;
}

void ExecCache::save(const std::string& path) const { write_checkpoint_file(path, encode()); }

void ExecCache::load(const std::string& path) { decode(read_checkpoint_file(path)); }

}  // namespace lmc
