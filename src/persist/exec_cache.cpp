#include "persist/exec_cache.hpp"

#include <algorithm>
#include <cstring>
#include <vector>

#include "persist/checkpoint.hpp"

namespace lmc {

namespace {

constexpr std::size_t kMagicLen = sizeof(kExecCacheMagic);
// magic | u32 version | u32 reserved | u64 entry count
constexpr std::size_t kHeaderLen = kMagicLen + 2 * sizeof(std::uint32_t) + sizeof(std::uint64_t);

[[noreturn]] void fail(const std::string& what) { throw CheckpointError("exec cache: " + what); }

void check(bool ok, const char* what) {
  if (!ok) fail(what);
}

}  // namespace

bool ExecCache::lookup(Hash64 ev, Hash64 state, ExecResult& out) const {
  const Key k{ev, state};
  Shard& s = shards_[shard_of(k)];
  std::lock_guard<std::mutex> lk(s.mu);
  auto it = s.young.find(k);
  if (it == s.young.end()) {
    it = s.old.find(k);
    if (it == s.old.end()) {
      misses_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  out = it->second;
  return true;
}

bool ExecCache::peek(Hash64 ev, Hash64 state) const {
  const Key k{ev, state};
  Shard& s = shards_[shard_of(k)];
  std::lock_guard<std::mutex> lk(s.mu);
  return s.young.count(k) != 0 || s.old.count(k) != 0;
}

void ExecCache::rotate_locked_all() {
  std::unique_lock<std::mutex> locks[kShards];
  for (std::size_t i = 0; i < kShards; ++i)
    locks[i] = std::unique_lock<std::mutex>(shards_[i].mu);
  // Re-check under the full lock set: a racing inserter may have rotated
  // while we were acquiring.
  if (young_count_.load(std::memory_order_relaxed) < half()) return;
  for (Shard& s : shards_) {
    s.old = std::move(s.young);
    s.young.clear();
  }
  young_count_.store(0, std::memory_order_relaxed);
}

void ExecCache::insert(Hash64 ev, Hash64 state, const ExecResult& r) {
  const Key k{ev, state};
  Shard& s = shards_[shard_of(k)];
  {
    std::lock_guard<std::mutex> lk(s.mu);
    if (s.young.count(k) != 0 || s.old.count(k) != 0) return;  // first insert wins
    if (young_count_.load(std::memory_order_relaxed) < half()) {
      s.young.emplace(k, r);
      young_count_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }
  // The young generation is full: rotate (needs every shard lock, so our
  // shard lock was released first), then insert into the fresh generation.
  rotate_locked_all();
  std::lock_guard<std::mutex> lk(s.mu);
  if (s.young.count(k) != 0 || s.old.count(k) != 0) return;
  s.young.emplace(k, r);
  young_count_.fetch_add(1, std::memory_order_relaxed);
}

std::size_t ExecCache::size() const {
  std::size_t n = 0;
  for (const Shard& s : shards_) {
    std::lock_guard<std::mutex> lk(s.mu);
    n += s.young.size() + s.old.size();
  }
  return n;
}

std::uint64_t ExecCache::hits() const { return hits_.load(std::memory_order_relaxed); }

std::uint64_t ExecCache::misses() const { return misses_.load(std::memory_order_relaxed); }

Blob ExecCache::encode() const {
  std::unique_lock<std::mutex> locks[kShards];
  for (std::size_t i = 0; i < kShards; ++i)
    locks[i] = std::unique_lock<std::mutex>(shards_[i].mu);
  std::vector<const std::pair<const Key, ExecResult>*> sorted;
  for (const Shard& s : shards_) {
    for (const auto& kv : s.young) sorted.push_back(&kv);
    for (const auto& kv : s.old) sorted.push_back(&kv);
  }
  std::sort(sorted.begin(), sorted.end(), [](const auto* a, const auto* b) {
    return a->first.ev != b->first.ev ? a->first.ev < b->first.ev
                                      : a->first.state < b->first.state;
  });
  Writer w;
  w.raw(reinterpret_cast<const std::uint8_t*>(kExecCacheMagic), kMagicLen);
  w.u32(kExecCacheVersion);
  w.u32(0);  // reserved
  w.u64(sorted.size());
  for (const auto* kv : sorted) {
    w.u64(kv->first.ev);
    w.u64(kv->first.state);
    const ExecResult& r = kv->second;
    w.bytes(r.state);
    w.vec(r.sent, [](Writer& ww, const Message& m) { m.serialize(ww); });
    w.b(r.assert_failed);
    w.str(r.assert_msg);
  }
  Blob out = std::move(w).take();
  const Hash64 sum = hash_bytes(out.data(), out.size());
  Writer tail;
  tail.u64(sum);
  out.insert(out.end(), tail.data().begin(), tail.data().end());
  return out;
}

void ExecCache::decode(const Blob& data) {
  check(data.size() >= kHeaderLen + sizeof(std::uint64_t), "file too small");
  check(std::memcmp(data.data(), kExecCacheMagic, kMagicLen) == 0,
        "bad magic (not an exec cache file)");
  const std::size_t body_len = data.size() - sizeof(std::uint64_t);
  Reader tail(data.data() + body_len, sizeof(std::uint64_t));
  check(hash_bytes(data.data(), body_len) == tail.u64(),
        "checksum mismatch (truncated or corrupted file)");

  Map map;
  try {
    Reader r(data.data(), body_len);
    r.u64();  // magic (already compared)
    check(r.u32() == kExecCacheVersion, "unsupported format version");
    r.u32();  // reserved
    const std::uint64_t count = r.u64();
    for (std::uint64_t i = 0; i < count; ++i) {
      Key k;
      k.ev = r.u64();
      k.state = r.u64();
      ExecResult res;
      res.state = r.bytes();
      res.sent = r.vec<Message>([](Reader& rr) { return Message::deserialize(rr); });
      res.assert_failed = r.b();
      res.assert_msg = r.str();
      check(map.emplace(k, std::move(res)).second, "duplicate cache key");
    }
    r.expect_exhausted();
  } catch (const SerializeError& e) {
    fail(std::string("malformed entry: ") + e.what());
  }

  // Loaded entries all land in the young generation: a load is a fresh
  // start, and they should survive at least one rotation of new inserts.
  std::unique_lock<std::mutex> locks[kShards];
  for (std::size_t i = 0; i < kShards; ++i)
    locks[i] = std::unique_lock<std::mutex>(shards_[i].mu);
  for (Shard& s : shards_) {
    s.young.clear();
    s.old.clear();
  }
  for (auto& kv : map) shards_[shard_of(kv.first)].young.emplace(kv.first, std::move(kv.second));
  young_count_.store(map.size(), std::memory_order_relaxed);
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
}

void ExecCache::save(const std::string& path) const { write_checkpoint_file(path, encode()); }

void ExecCache::load(const std::string& path) { decode(read_checkpoint_file(path)); }

}  // namespace lmc
