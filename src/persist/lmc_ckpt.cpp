// Checkpoint tooling:
//   lmc_ckpt inspect  <file>      header, section table, summary counters
//   lmc_ckpt inspect --json <file>  one "lmc-bench/1" record (full decode:
//                                 includes the stats section's counters)
//   lmc_ckpt validate <file>      full structural decode; exit 0 iff valid
//   lmc_ckpt diff     <a> <b>     what exploration happened between two
//                                 checkpoints of the same run
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string>
#include <unordered_set>

#include "obs/bench_schema.hpp"
#include "persist/checkpoint.hpp"

namespace {

using namespace lmc;

const char* section_name(std::uint32_t id) {
  switch (id) {
    case kSecMeta: return "meta";
    case kSecEpochs: return "epochs";
    case kSecStore: return "store";
    case kSecNetwork: return "network";
    case kSecEvents: return "events";
    case kSecFeasibility: return "feasibility";
    case kSecCursors: return "cursors";
    case kSecStats: return "stats";
    case kSecDeferred: return "deferred";
    case kSecViolations: return "violations";
    case kSecPending: return "pending";
    case kSecSegment: return "segment";
    case kSecSymmetry: return "symmetry";
    case kSecPor: return "por";
    default: return nullptr;  // unknown (future) section — caller warns
  }
}

int cmd_inspect_json(const std::string& path) {
  const Blob data = read_checkpoint_file(path);
  const CheckpointInfo info = inspect_checkpoint(data);
  const CheckerImage img = decode_checkpoint(data);  // stats live past the meta section
  obs::BenchRecord rec("lmc_ckpt", path);
  rec.param("version", static_cast<std::uint64_t>(info.version));
  rec.param("nodes", static_cast<std::uint64_t>(info.num_nodes));
  rec.metric("file_bytes", static_cast<std::uint64_t>(data.size()));
  rec.metric("node_states", info.total_states);
  rec.metric("iplus_messages", info.net_size);
  rec.metric("events", info.event_count);
  rec.metric("epochs", info.epoch_count);
  rec.metric("pending_tasks", info.pending_tasks);
  rec.metric("segment_id", info.segment_id);
  rec.metric("base_round", static_cast<std::uint64_t>(info.base_round));
  rec.metric("transitions", img.stats.transitions);
  rec.metric("system_states", img.stats.system_states);
  rec.metric("prelim_violations", img.stats.prelim_violations);
  rec.metric("confirmed_violations", img.stats.confirmed_violations);
  rec.metric("soundness_calls", img.stats.soundness_calls);
  rec.metric("soundness_deferred", img.stats.soundness_deferred);
  rec.metric("deferred_processed", img.stats.deferred_processed);
  rec.metric("deferred_dropped", img.stats.deferred_dropped);
  rec.metric("checkpoints_written", img.stats.checkpoints_written);
  rec.metric("elapsed_s", img.stats.elapsed_s);
  rec.metric("soundness_s", img.stats.soundness_s);
  rec.metric("soundness_wall_s", img.stats.soundness_wall_s);
  rec.metric("deferred_s", img.stats.deferred_s);
  rec.metric("completed", static_cast<std::uint64_t>(img.stats.completed ? 1 : 0));
  if (info.has_symmetry) {
    rec.metric("sym_orbits", info.sym_orbits);
    rec.metric("sym_classes", static_cast<std::uint64_t>(info.sym_classes));
    rec.metric("sym_represented", info.sym_represented);
  }
  if (info.has_por) {
    rec.metric("por_relation_pairs", info.por_relation_pairs);
    rec.metric("por_pruned", info.por_pruned);
    rec.metric("por_conservative", info.por_conservative);
    rec.metric("por_audits", info.por_audits);
    rec.metric("por_entries", info.por_entries);
    rec.metric("por_deferred", info.por_deferred);
  }
  rec.emit();
  return 0;
}

int cmd_inspect(const std::string& path) {
  const Blob data = read_checkpoint_file(path);
  const CheckpointInfo info = inspect_checkpoint(data);
  std::printf("%s: LMC checkpoint v%u, %zu bytes\n", path.c_str(), info.version, data.size());
  std::printf("  nodes:       %u\n", info.num_nodes);
  std::printf("  node states: %" PRIu64 " (", info.total_states);
  for (std::size_t n = 0; n < info.states_per_node.size(); ++n)
    std::printf("%s%" PRIu64, n == 0 ? "" : " ", info.states_per_node[n]);
  std::printf(")\n");
  std::printf("  I+ messages: %" PRIu64 "\n", info.net_size);
  std::printf("  events:      %" PRIu64 "\n", info.event_count);
  std::printf("  epochs:      %" PRIu64 "\n", info.epoch_count);
  std::printf("  transitions: %" PRIu64 "\n", info.transitions);
  std::printf("  confirmed:   %" PRIu64 "\n", info.confirmed_violations);
  std::printf("  pending:     %" PRIu64 " task(s) of an interrupted round\n", info.pending_tasks);
  std::printf("  segment:     %" PRIu64 " (rounds continue from %u on resume)\n", info.segment_id,
              info.base_round);
  if (info.has_symmetry)
    std::printf("  symmetry:    %" PRIu64 " orbit(s) over %u class(es), %" PRIu64
                " ordered combination(s) represented, %" PRIu64 " seen-set entries\n",
                info.sym_orbits, info.sym_classes, info.sym_represented, info.sym_seen);
  if (info.has_por)
    std::printf("  por:         relation %" PRIu64 " pair(s) (digest %016" PRIx64 "), %" PRIu64
                " pruned, %" PRIu64 " conservative, %" PRIu64 " audit(s), %" PRIu64
                " persisted forward record(s), %" PRIu64 " deferred pair(s)\n",
                info.por_relation_pairs, info.por_digest, info.por_pruned, info.por_conservative,
                info.por_audits, info.por_entries, info.por_deferred);
  std::printf("  sections:\n");
  for (const auto& s : info.sections) {
    const char* name = section_name(s.id);
    std::printf("    %-12s id=%-3u %10zu bytes\n", name != nullptr ? name : "?", s.id, s.len);
    if (name == nullptr)
      std::fprintf(stderr,
                   "warning: %s: unknown section id=%u (%zu bytes) — written by a newer "
                   "lmc version; its contents are ignored here\n",
                   path.c_str(), s.id, s.len);
  }
  return 0;
}

int cmd_validate(const std::string& path) {
  const Blob data = read_checkpoint_file(path);
  const CheckerImage img = decode_checkpoint(data);  // throws on any defect
  // Canonical-form check: re-encoding a valid image must reproduce the file.
  const Blob again = encode_checkpoint(img);
  if (again != data) {
    std::fprintf(stderr, "%s: decodes but is not in canonical form\n", path.c_str());
    return 1;
  }
  std::printf("%s: valid (v%u, %u nodes, %" PRIu64 " states, %zu epochs)\n", path.c_str(),
              kCheckpointVersion, img.num_nodes, img.store.total_states(), img.epochs.size());
  return 0;
}

int cmd_diff(const std::string& a_path, const std::string& b_path) {
  const CheckerImage a = decode_checkpoint(read_checkpoint_file(a_path));
  const CheckerImage b = decode_checkpoint(read_checkpoint_file(b_path));
  if (a.num_nodes != b.num_nodes) {
    std::printf("node count differs: %u vs %u — not checkpoints of the same system\n",
                a.num_nodes, b.num_nodes);
    return 1;
  }
  std::printf("%s -> %s\n", a_path.c_str(), b_path.c_str());
  auto delta = [](const char* what, std::uint64_t x, std::uint64_t y) {
    std::printf("  %-22s %10" PRIu64 " -> %-10" PRIu64 " (%+" PRId64 ")\n", what, x, y,
                static_cast<std::int64_t>(y) - static_cast<std::int64_t>(x));
  };
  delta("transitions", a.stats.transitions, b.stats.transitions);
  delta("node states", a.store.total_states(), b.store.total_states());
  delta("I+ messages", a.net_entries.size(), b.net_entries.size());
  delta("events", a.events.size(), b.events.size());
  delta("epochs", a.epochs.size(), b.epochs.size());
  delta("confirmed violations", a.stats.confirmed_violations, b.stats.confirmed_violations);
  delta("pending tasks", a.pending.size(), b.pending.size());
  for (NodeId n = 0; n < a.num_nodes; ++n) {
    // Per-node LS delta by state-hash sets, not just counts — detects
    // divergent exploration even when sizes happen to match.
    std::unordered_set<Hash64> ha, hb;
    for (std::uint32_t i = 0; i < a.store.size(n); ++i) ha.insert(a.store.rec(n, i).hash);
    for (std::uint32_t i = 0; i < b.store.size(n); ++i) hb.insert(b.store.rec(n, i).hash);
    std::uint64_t only_a = 0, only_b = 0;
    for (Hash64 h : ha)
      if (!hb.count(h)) ++only_a;
    for (Hash64 h : hb)
      if (!ha.count(h)) ++only_b;
    std::printf("  LS_%-3u %6u -> %-6u states; %" PRIu64 " only in a, %" PRIu64 " only in b\n", n,
                a.store.size(n), b.store.size(n), only_a, only_b);
  }
  return 0;
}

int usage() {
  std::fprintf(stderr,
               "usage: lmc_ckpt inspect [--json] <file>\n"
               "       lmc_ckpt validate <file>\n"
               "       lmc_ckpt diff <a> <b>\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "inspect") {
      if (std::strcmp(argv[2], "--json") == 0)
        return argc >= 4 ? cmd_inspect_json(argv[3]) : usage();
      return cmd_inspect(argv[2]);
    }
    if (cmd == "validate") return cmd_validate(argv[2]);
    if (cmd == "diff" && argc >= 4) return cmd_diff(argv[2], argv[3]);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
